#include "cpu/core.h"

#include "fault/fault.h"
#include "snap/snapstream.h"
#include "support/log.h"

#include "support/strings.h"

namespace msim {
namespace {

// True if the decoded instruction reads GPR `reg` (load-use hazard check).
bool UsesReg(const Decoded& d, uint8_t reg) {
  if (reg == 0) {
    return false;
  }
  switch (d.kind) {
    // No GPR sources.
    case InstrKind::kLui:
    case InstrKind::kAuipc:
    case InstrKind::kJal:
    case InstrKind::kEcall:
    case InstrKind::kEbreak:
    case InstrKind::kFence:
    case InstrKind::kMenter:
    case InstrKind::kMexit:
    case InstrKind::kRmr:
    case InstrKind::kRcr:
    case InstrKind::kMopr:
      return false;
    // rs1 only.
    case InstrKind::kJalr:
    case InstrKind::kWmr:
    case InstrKind::kWcr:
    case InstrKind::kMopw:
    case InstrKind::kTlbinv:
    case InstrKind::kTlbflush:
    case InstrKind::kTlbrd:
    case InstrKind::kHalt:
    case InstrKind::kMld:
    case InstrKind::kPlw:
      return d.rs1 == reg;
    // rs1 + rs2.
    case InstrKind::kMst:
    case InstrKind::kPsw:
    case InstrKind::kTlbwr:
    case InstrKind::kMintset:
      return d.rs1 == reg || d.rs2 == reg;
    default:
      break;
  }
  switch (d.info().format) {
    case InstrFormat::kR:
    case InstrFormat::kS:
    case InstrFormat::kB:
      return d.rs1 == reg || d.rs2 == reg;
    case InstrFormat::kI:
      return d.rs1 == reg;
    default:
      return false;
  }
}

uint32_t LowestSetBit(uint32_t mask) {
  for (uint32_t i = 0; i < 32; ++i) {
    if ((mask >> i) & 1u) {
      return i;
    }
  }
  return 0;
}

// Instruction kinds StepFast lets into the pipeline window: plain ALU ops,
// multiplies/divides, fence and control transfers. Everything these do in EX
// is a register write and/or a fetch redirect — no memory op, no trap, no
// Metal state, no halt — so a window cycle needs no MEM stage and no
// exception machinery. Loads/stores, menter/mexit, ecall/ebreak/halt and
// every Metal-only kind fall back to StepCycle.
// The per-cycle window check delegates to the shared predicate so the
// superblock build walk (cpu/superblock.cc) can never disagree with it.
bool WindowSafe(InstrKind kind) { return WindowSafeInstr(kind); }

}  // namespace

Core::Core(const CoreConfig& config)
    : config_(config),
      bus_(config.dram_size),
      mmu_(config.tlb_entries),
      icache_(config.icache_lines, config.icache_line_size, config.cache_hit_latency,
              config.dram_latency),
      dcache_(config.dcache_lines, config.dcache_line_size, config.cache_hit_latency,
              config.dram_latency),
      predecode_(config.predecode_entries),
      superblocks_(config.superblocks && config.fast_step, config.superblock_max_len) {
  // Device map; AttachDevice only fails on overlap, which is impossible here.
  (void)bus_.AttachDevice(InterruptController::kDefaultBase, &intc_);
  (void)bus_.AttachDevice(TimerDevice::kDefaultBase, &timer_);
  (void)bus_.AttachDevice(NicDevice::kDefaultBase, &nic_);
  (void)bus_.AttachDevice(ConsoleDevice::kDefaultBase, &console_);
  // Observability wiring: one tracer shared by the pipeline and all
  // instrumented components, and a registry enumerating every counter.
  icache_.SetTracer(&tracer_, TraceEventKind::kICacheMiss);
  dcache_.SetTracer(&tracer_, TraceEventKind::kDCacheMiss);
  mram_.SetTracer(&tracer_);
  mmu_.SetTracer(&tracer_);
  metal_.SetTracer(&tracer_);
  mram_.SetParityEnabled(config.mram_parity);
  RegisterMetrics();
  SetLogCycleSource(&cycle_);
}

Core::~Core() {
  // Another core constructed later may have taken over the log prefix.
  if (GetLogCycleSource() == &cycle_) {
    SetLogCycleSource(nullptr);
  }
}

void Core::RegisterMetrics() {
  metrics_.Register("core", "cycles", &stats_.cycles, "simulated clock cycles");
  metrics_.Register("core", "instret", &stats_.instret, "retired instructions");
  metrics_.Register("core", "metal_instret", &stats_.metal_instret,
                    "instructions retired in Metal mode");
  metrics_.Register("core", "metal_cycles", &stats_.metal_cycles,
                    "cycles with the committed mode == Metal");
  metrics_.Register("core", "menters", &stats_.menters, "committed menter transitions");
  metrics_.Register("core", "mexits", &stats_.mexits, "committed mexit transitions");
  metrics_.Register("core", "fast_replacements", &stats_.fast_replacements,
                    "decode-stage menter/mexit replacements");
  metrics_.Register("core", "exceptions", &stats_.exceptions, "exceptions delivered");
  metrics_.Register("core", "interrupts", &stats_.interrupts, "interrupts delivered");
  metrics_.Register("core", "intercepts", &stats_.intercepts, "instructions intercepted");
  metrics_.Register("core", "control_flushes", &stats_.control_flushes,
                    "pipeline flushes from taken control transfers");
  metrics_.Register("core", "load_use_stalls", &stats_.load_use_stalls,
                    "1-cycle load-use bubbles");
  metrics_.Register("core", "machine_checks", &stats_.machine_checks,
                    "machine checks raised (delegated or fatal)");
  metrics_.Register("core", "watchdog_fires", &stats_.watchdog_fires,
                    "Metal-mode watchdog expirations");
  icache_.RegisterMetrics(metrics_, "icache");
  dcache_.RegisterMetrics(metrics_, "dcache");
  mmu_.tlb().RegisterMetrics(metrics_);
  mram_.RegisterMetrics(metrics_);
  predecode_.RegisterMetrics(metrics_);
  superblocks_.RegisterMetrics(metrics_);
  metal_.RegisterMetrics(metrics_);
  metrics_.RegisterFn("nic", "packets_delivered",
                      [this] { return nic_.packets_delivered(); },
                      "packets handed to the rx queue");
  metrics_.RegisterFn("console", "bytes_written",
                      [this] { return static_cast<uint64_t>(console_.output().size()); },
                      "bytes written to the console device");
}

void Core::SetTraceSink(TraceSink* sink) {
  if (sink == nullptr) {
    tracer_.Detach();
  } else {
    tracer_.Attach(sink, &cycle_);
  }
}

Status Core::LoadProgram(const Program& program) {
  MSIM_RETURN_IF_ERROR(bus_.dram().LoadSection(program.text));
  MSIM_RETURN_IF_ERROR(bus_.dram().LoadSection(program.data));
  predecode_.InvalidateAll();
  superblocks_.InvalidateAll();
  SetPc(program.entry);
  return Status::Ok();
}

void Core::SetPc(uint32_t pc) {
  ResetFetch(pc);
  if_id_.valid = false;
  id_ex_.valid = false;
  ex_mem_.valid = false;
  inflight_mode_ops_ = 0;
  frontend_metal_ = arch_metal_;
}

void Core::ResetStats() {
  stats_ = CoreStats{};
  icache_.ResetStats();
  dcache_.ResetStats();
  mmu_.tlb().ResetStats();
  mram_.ResetStats();
  predecode_.ResetStats();
  superblocks_.ResetStats();
  metal_.ResetStats();
}

RunResult Core::Run(uint64_t max_cycles) {
  if (max_cycles == 0) {
    max_cycles = config_.default_max_cycles;
  }
  const uint64_t start_cycle = cycle_;
  while (!halted_ && !has_fatal_ && cycle_ - start_cycle < max_cycles) {
    if (config_.fast_step &&
        StepFast(max_cycles - (cycle_ - start_cycle)) != 0) {
      continue;
    }
    StepCycle();
  }
  RunResult result;
  result.cycles = cycle_ - start_cycle;
  result.instret = stats_.instret;
  result.exit_code = exit_code_;
  if (has_fatal_) {
    result.reason = RunResult::Reason::kFatal;
    result.fatal_message = fatal_.message();
  } else if (halted_) {
    result.reason = RunResult::Reason::kHalted;
  } else {
    result.reason = RunResult::Reason::kCycleLimit;
  }
  return result;
}

void Core::StepCycle() {
  if (halted_ || has_fatal_) {
    return;
  }
  ++cycle_;
  stats_.cycles = cycle_;
  if (fault_engine_ != nullptr) {
    fault_engine_->Tick(*this);
    if (has_fatal_) {
      return;
    }
  }
  if (arch_metal_) {
    ++stats_.metal_cycles;
    ++metal_resident_cycles_;
  } else {
    metal_resident_cycles_ = 0;
  }
  // Metal-mode watchdog (docs/robustness.md): mroutines are non-interruptible,
  // so a runaway mroutine would otherwise hang the machine. When the committed
  // mode stays Metal for more than the configured budget, raise a machine
  // check; the counter restarts so the recovery mroutine gets a fresh budget.
  if (config_.metal_watchdog_cycles != 0 &&
      metal_resident_cycles_ > config_.metal_watchdog_cycles) {
    ++stats_.watchdog_fires;
    metal_resident_cycles_ = 0;
    RaiseMachineCheck(McheckKind::kWatchdog, last_metal_entry_,
                      id_ex_.valid ? id_ex_.pc : fetch_pc_);
    if (has_fatal_) {
      return;
    }
  }
  bus_.TickDevices(cycle_, intc_);
  redirect_this_cycle_ = false;
  ex_load_this_cycle_ = false;
  StageMem();
  if (has_fatal_ || halted_) {
    return;
  }
  StageEx();
  if (has_fatal_ || halted_) {
    return;
  }
  StageId();
  StageIf();
}

// ---------------------------------------------------------------------------
// Hot-path stepping
// ---------------------------------------------------------------------------
//
// StepFast commits cycles of the exact StepCycle state machine, specialised
// for the common case: non-Metal straight-line/branchy ALU code with 1-cycle
// icache-hit fetches, an empty MEM stage, no deliverable interrupt, no fault
// engine, and no device with a pending event. Under those conditions each
// cycle is: EX executes the ID/EX op (retiring it), ID shifts IF/ID into
// ID/EX, IF fetches a new word with same-cycle delivery — or, on a taken
// branch, EX redirects and the frontend refills over the next two cycles.
//
// Every condition that could make a cycle deviate from that shape is checked
// BEFORE the cycle is committed, so a StepFast exit always lands on a state
// StepCycle can continue from, and N committed cycles leave the machine
// byte-identical (SaveState stream, including stale latch fields and every
// counter) to N StepCycle calls. Guard stability inside the window: stores,
// Metal ops and loads never enter the window, so interrupt enables, intercept
// and paging configuration, device state and the predecode generation cannot
// change between the entry checks and the exit.

bool Core::AluRedirects(const Decoded& d) const {
  switch (d.kind) {
    case InstrKind::kJal:
    case InstrKind::kJalr:
      return true;
    case InstrKind::kBeq:
      return ReadReg(d.rs1) == ReadReg(d.rs2);
    case InstrKind::kBne:
      return ReadReg(d.rs1) != ReadReg(d.rs2);
    case InstrKind::kBlt:
      return static_cast<int32_t>(ReadReg(d.rs1)) < static_cast<int32_t>(ReadReg(d.rs2));
    case InstrKind::kBge:
      return static_cast<int32_t>(ReadReg(d.rs1)) >= static_cast<int32_t>(ReadReg(d.rs2));
    case InstrKind::kBltu:
      return ReadReg(d.rs1) < ReadReg(d.rs2);
    case InstrKind::kBgeu:
      return ReadReg(d.rs1) >= ReadReg(d.rs2);
    default:
      return false;
  }
}

uint64_t Core::StepFast(uint64_t max_cycles, uint64_t max_retires) {
  if (!config_.fast_step || max_cycles == 0 || halted_ || has_fatal_) {
    return 0;
  }
  // Global eligibility. Anything here that could change inside the window is
  // only changed by instruction kinds the window refuses (see WindowSafe and
  // TraceSafeInstr — paging state, ASID, KEYPERM and TLB contents move only
  // under Metal-only instructions, so paging-enabled windows are sound: every
  // translation is re-probed per access, side-effect-free, and a miss or
  // permission failure exits to the per-cycle machinery, which then counts
  // the miss and raises the fault). bus_fault_armed_ is normally implied by
  // fault_engine_, but can survive it via checkpoint restore — the armed
  // corruption must land through the per-cycle MEM stage.
  if (fault_engine_ != nullptr || arch_metal_ || frontend_metal_ ||
      inflight_mode_ops_ != 0 || in_machine_check_ || bus_fault_armed_ ||
      metal_.AnyInterceptEnabled() || (intc_.pending() & metal_.ienable()) != 0 ||
      config_.cache_hit_latency != 1) {
    return 0;
  }
  // Pipeline shape: MEM empty, fetch unit idle, and anything already latched
  // must itself be window-safe.
  if (ex_mem_.valid || fetch_inflight_ || fetch_wait_ != 0 || fetch_buffer_.valid) {
    return 0;
  }
  if (id_ex_.valid &&
      (id_ex_.metal || id_ex_.has_transition() || id_ex_.intercepted ||
       id_ex_.fetch_fault != ExcCause::kNone || !WindowSafe(id_ex_.d.kind))) {
    return 0;
  }
  // No entry check on IF/ID: the loop decides per cycle whether the latched
  // word is consumed (must be window-safe) or squashed by a taken branch.

  const uint64_t start = cycle_;
  // First cycle at which any device tick has an effect; cycles strictly below
  // it need no TickDevices call. Stable in-window: in-window memory traffic
  // is DRAM-only (MMIO is excluded from every fast path), so no store can
  // move a device's next event.
  const uint64_t horizon = bus_.NextDeviceEventCycle(cycle_);
  const uint32_t dram_size = bus_.dram().size();
  // Translation context. Stable in-window: PGENABLE/ASID/KEYPERM and the TLB
  // itself move only under Metal-only instructions, which no window admits.
  const bool paged = metal_.paging_enabled();
  const uint16_t asid = metal_.asid();
  const uint32_t keyperm = metal_.keyperm();
  const SbAddrSpace sb_as{paged ? &mmu_ : nullptr, asid, keyperm};
  // Mutable: superblock store slots bump it mid-window; reloaded after every
  // completed store so predecode probes always see the current generation.
  uint64_t gen = bus_.dram().write_generation();
  uint64_t retired = 0;

  // The window's pipeline state lives in shadow locals; the member latches
  // are written back once at exit, byte-identical to what per-cycle stepping
  // would have left (consuming a latch only clears `valid` — the payload
  // goes stale in place — so payload locals are KEPT when their valid local
  // drops). cycle_ itself advances per cycle: ExecuteAluOp's retire hook
  // stamps RetireEvent::cycle from it.
  bool ex_valid = id_ex_.valid;
  uint32_t ex_pc = id_ex_.pc;
  Decoded ex_d = id_ex_.d;
  bool id_valid = if_id_.valid;
  uint32_t id_pc = if_id_.pc;
  uint32_t id_raw = if_id_.raw;
  Decoded id_d = if_id_.d;
  bool id_metal = if_id_.metal;
  ExcCause id_fault = if_id_.fault;
  uint32_t id_fault_addr = if_id_.fault_addr;
  uint32_t pc = fetch_pc_;
  bool fetched_any = false;  // fetch_buffer_ payload needs writeback
  bool shifted_any = false;  // id_ex_ went through StageId: extras are zeroed
  bool last_redirect = false;
  uint64_t icache_hits = 0;
  uint64_t predecode_hits = 0;
  uint64_t dcache_hits = 0;
  uint64_t tlb_hits = 0;  // fetch + data translations, credited in one batch

  // Pending MEM-stage op shadow (superblock memory slots only). A dispatch
  // latches the access here with wait = 1; the next committed cycle's
  // MEM-stage slice completes it. Mirrors ex_mem_: consuming only drops
  // `valid`/zeroes `wait`, the payload goes stale in place, so the shadow is
  // written back whenever any memory slot ran.
  MemOp sb_pend;
  bool sb_mem_any = false;
  // Load-use shadow for writeback: per-cycle, ex_load_this_cycle_ is true at
  // window end iff the LAST committed cycle dispatched a load. Recording the
  // dispatch cycle number makes that a single compare at exit instead of a
  // per-cycle reset.
  uint64_t load_dispatch_cycle = ~uint64_t{0};
  uint8_t ex_load_rd = ex_load_rd_;
  // Fetch-buffer payload shadow. Generic-loop fetches deliver same-cycle, so
  // their buffer payload equals the IF/ID payload (handled at writeback); a
  // trace fetch under a live skid (depth 1) parks a DIFFERENT word in the
  // buffer, tracked by these locals. buf_valid is the buffer's `valid` bit at
  // window end (true only when a window exits mid-skid).
  bool buf_valid = false;
  bool buf_from_trace = false;
  uint32_t buf_pc = 0;
  uint32_t buf_raw = 0;
  Decoded buf_d;

  // Reusable EX operand. Every in-window ID/EX op is a plain StageId product:
  // no transition chain, no intercept, no fetch fault — those fields stay at
  // their defaults across the whole window, so only pc/d vary per cycle.
  Op ex_op;
  ex_op.valid = true;

  const bool sb_on = superblocks_.enabled();
  const uint32_t sb_icache_line = config_.icache_line_size;
  // Segment readiness sweep, run once per trace-segment entry. Every fetch
  // inside a segment must be a faultless, 1-cycle icache hit; neither the
  // icache (hits do not allocate, D-side traffic is DRAM-only) nor the
  // translation of the segment's pages (Metal-only mutations) can change
  // in-window, so one sweep stands in for the per-fetch Probe/Translate the
  // generic loop runs. Under paging, the pages must additionally be
  // resident, executable, key-readable and map at ONE common delta (the
  // build-time slot addresses are virtual; `*delta` rebases them).
  //
  // Returns the number of LEADING slots that are ready (0 rejects the
  // segment). The executor runs the segment truncated to that prefix —
  // byte-exact, because a truncated segment is indistinguishable from a
  // shorter trace: the fetch guard exits before the first cold word, and
  // the generic loop takes the same cycles to the same probe/translate
  // failure. Truncation matters: a trace's cold suffix (a fall-through
  // path the guest has not reached) must not keep its hot prefix — e.g. a
  // loop body ending in a strongly taken back edge — out of the executor.
  auto sb_seg_ready = [&](const SbSegment& seg, uint32_t* delta) -> uint32_t {
    uint32_t d = 0;
    uint32_t vlimit = seg.start + 4 * seg.len;
    if (paged) {
      bool have_d = false;
      for (uint32_t page = seg.start & ~4095u; page < vlimit; page += 4096u) {
        const uint32_t va = page < seg.start ? seg.start : page;
        const uint32_t vend = page + 4096u < vlimit ? page + 4096u : vlimit;
        const TranslateResult tr =
            mmu_.ProbeTranslate(va, AccessType::kFetch, asid, keyperm);
        if (!tr.ok || tr.paddr >= kMmioBase ||
            static_cast<uint64_t>(tr.paddr) + (vend - va) > dram_size ||
            (have_d && tr.paddr - va != d)) {
          // Miss, fault, out of DRAM, or a discontiguous mapping: the ready
          // prefix ends at this page boundary.
          vlimit = va;
          break;
        }
        d = tr.paddr - va;
        have_d = true;
      }
    }
    const uint32_t first = seg.start + d - ((seg.start + d) % sb_icache_line);
    for (uint32_t a = first; a < vlimit + d; a += sb_icache_line) {
      if (!icache_.Probe(a)) {
        const uint32_t va = a - d;
        vlimit = va < seg.start ? seg.start : va;
        break;
      }
    }
    *delta = d;
    return (vlimit - seg.start) / 4;
  };

// Superblock executor cycle fragments (see the executor block below). Each
// committed trace cycle performs exactly the generic loop's work for that
// cycle — same counters, same tracer events, same latch-shadow evolution —
// with the per-cycle decode, window-safety re-check and double branch
// evaluation compiled away at build time.
//
// Pre-commit fetch check for the cycle's speculative fetch. The fetch slot
// is e + 2 + depth: at depth 1 (live load-use skid) the frontend runs one
// slot ahead, with the extra word parked in the skid buffer. Mirrors the
// generic loop's decide-then-commit contract: every exit taken here abandons
// the cycle with no side effects. The first guard is the generic loop's ID
// window-safety break: when the word about to shift into EX (slot e + 1) is
// past the executable run, a per-cycle run would refuse to commit this
// cycle, so the trace must exit BEFORE committing it too.
//
// When a pending STORE completes this cycle, MEM runs before IF: the fetch
// must observe the post-store bytes. The store may legally target the
// executing trace's own backing words — the merged word is compared against
// the slot raw, and any mismatch invalidates the trace and exits before the
// cycle commits. The bumped generation also forces the per-cycle fetch off
// the predecode-hit path, so sb_hit is forced false to count identically.
#define MSIM_SB_FETCH_OR_EXIT()                                          \
  do {                                                                   \
    const int32_t sb_f = e + 2 + depth;                                  \
    if (e + 1 >= exec_len || sb_f >= len) {                              \
      goto sb_exit_uncommitted;                                          \
    }                                                                    \
    const SbSlot& sb_fs = slots[sb_f];                                   \
    const uint32_t sb_fpa = sb_fs.addr + fdelta;                         \
    if (sb_pend.valid && sb_pend.is_store) {                             \
      const auto sb_word = bus_.dram().Read32(sb_fpa);                   \
      if (!sb_word) {                                                    \
        goto sb_exit_stale;                                              \
      }                                                                  \
      uint32_t sb_w = *sb_word;                                          \
      if ((sb_pend.paddr & ~3u) == sb_fpa) {                             \
        const uint32_t sb_sh = (sb_pend.paddr & 3u) * 8;                 \
        const uint32_t sb_m = sb_pend.kind == InstrKind::kSb ? 0xFFu     \
                              : sb_pend.kind == InstrKind::kSh           \
                                  ? 0xFFFFu                              \
                                  : 0xFFFFFFFFu;                         \
        sb_w = (sb_w & ~(sb_m << sb_sh)) |                               \
               ((sb_pend.store_value & sb_m) << sb_sh);                  \
      }                                                                  \
      if (sb_w != sb_fs.raw) {                                           \
        goto sb_exit_stale;                                              \
      }                                                                  \
      sb_hit = false;                                                    \
    } else {                                                             \
      const Decoded* sb_peek = predecode_.Peek(sb_fpa, gen);             \
      if (sb_peek != nullptr) {                                          \
        if (sb_peek->raw != sb_fs.raw) {                                 \
          goto sb_exit_stale;                                            \
        }                                                                \
        sb_hit = true;                                                   \
      } else {                                                           \
        const auto sb_word = bus_.dram().Read32(sb_fpa);                 \
        if (!sb_word || *sb_word != sb_fs.raw) {                         \
          goto sb_exit_stale;                                            \
        }                                                                \
        sb_hit = false;                                                  \
      }                                                                  \
    }                                                                    \
  } while (0)

// Post-commit fetch bookkeeping: the same counting events as the generic
// loop's fetch (icache + TLB hit tally, predecode hit tally or
// Verify/Insert — `gen` read here, AFTER any pending-store completion), the
// ID -> EX shift, and the latch-payload shadow pointers. sh_ex/sh_id/sh_buf
// track which slot's payload a per-cycle run would have left in each latch
// and in the skid buffer; they are materialized into the ex_*/id_*/buf_*
// shadows only at executor exit. Every started fetch rewrites the buffer
// payload; at depth 0 delivery is same-cycle (ID gets the same word), at
// depth 1 ID consumes the PREVIOUS buffered word and the new word parks.
#define MSIM_SB_COMMIT_FETCH()                                           \
  do {                                                                   \
    const SbSlot& sb_fs = slots[e + 2 + depth];                          \
    const uint32_t sb_fpa = sb_fs.addr + fdelta;                         \
    ++icache_hits;                                                       \
    if (paged) {                                                         \
      ++tlb_hits;                                                        \
    }                                                                    \
    if (sb_hit) {                                                        \
      ++predecode_hits;                                                  \
    } else if (predecode_.Verify(sb_fpa, gen, sb_fs.raw) == nullptr) {   \
      predecode_.Insert(sb_fpa, gen, sb_fs.raw, sb_fs.d);                \
    }                                                                    \
    if (e >= -1) {                                                       \
      sh_ex = sh_id;                                                     \
      shifted_any = true;                                                \
    }                                                                    \
    sh_id = depth != 0 ? sh_buf : &sb_fs;                                \
    sh_buf = &sb_fs;                                                     \
    fetched_any = true;                                                  \
    ++e;                                                                 \
    pc = sb_fs.addr + 4;                                                 \
  } while (0)

// Top-of-cycle MEM stage: completes the pending memory op latched by the
// previous cycle's dispatch. StageMem runs before every other stage, so this
// expands right after each ++cycle_, BEFORE the cycle's EX work and events.
// Semantics are StageMem's DRAM path verbatim: consuming drops `valid` and
// zeroes `wait` (payload stale in place), stores write through the bus and
// bump the write generation (reloaded so every later predecode probe sees
// it), loads sign-extend exactly and write rd, and the op retires with the
// MEM-stage kRetire event ordering.
#define MSIM_SB_COMPLETE_PEND()                                          \
  do {                                                                   \
    if (sb_pend.valid) {                                                 \
      sb_pend.valid = false;                                             \
      sb_pend.wait = 0;                                                  \
      if (sb_pend.is_store) {                                            \
        switch (sb_pend.kind) {                                          \
          case InstrKind::kSb:                                           \
            (void)bus_.Write8(sb_pend.paddr,                             \
                              static_cast<uint8_t>(sb_pend.store_value)); \
            break;                                                       \
          case InstrKind::kSh:                                           \
            (void)bus_.Write16(sb_pend.paddr,                            \
                               static_cast<uint16_t>(sb_pend.store_value)); \
            break;                                                       \
          default:                                                       \
            (void)bus_.Write32(sb_pend.paddr, sb_pend.store_value);      \
            break;                                                       \
        }                                                                \
        gen = bus_.dram().write_generation();                            \
      } else {                                                           \
        uint32_t sb_ld = 0;                                              \
        switch (sb_pend.kind) {                                          \
          case InstrKind::kLb:                                           \
            sb_ld = static_cast<uint32_t>(static_cast<int32_t>(          \
                static_cast<int8_t>(bus_.Read8(sb_pend.paddr).value_or(0)))); \
            break;                                                       \
          case InstrKind::kLbu:                                          \
            sb_ld = bus_.Read8(sb_pend.paddr).value_or(0);               \
            break;                                                       \
          case InstrKind::kLh:                                           \
            sb_ld = static_cast<uint32_t>(static_cast<int32_t>(          \
                static_cast<int16_t>(bus_.Read16(sb_pend.paddr).value_or(0)))); \
            break;                                                       \
          case InstrKind::kLhu:                                          \
            sb_ld = bus_.Read16(sb_pend.paddr).value_or(0);              \
            break;                                                       \
          default:                                                       \
            sb_ld = bus_.Read32(sb_pend.paddr).value_or(0);              \
            break;                                                       \
        }                                                                \
        if (sb_pend.rd != 0) {                                           \
          regs_[sb_pend.rd] = sb_ld;                                     \
        }                                                                \
      }                                                                  \
      ++retired;                                                         \
      ++stats_.instret;                                                  \
      tracer_.Emit(TraceEventKind::kRetire, sb_pend.pc, sb_pend.raw, 0,  \
                   false);                                               \
      if (retire_trace_) {                                               \
        retire_trace_(RetireEvent{cycle_, sb_pend.pc, sb_pend.raw, false}); \
      }                                                                  \
    }                                                                    \
  } while (0)

// EX-stage commit of a memory slot's fast path: the pre-checked access
// becomes the pending MEM op (completed at the top of the next committed
// cycle), with StartMemOp's counter effects replayed — dcache hit, TLB hit
// when paged — and the load-use shadow updated for loads. store_value is
// latched for loads too (StartMemOp reads rs2 unconditionally), keeping the
// written-back ex_mem_ payload byte-identical.
#define MSIM_SB_MEM_DISPATCH()                                           \
  do {                                                                   \
    superblocks_.CountMemFastHit();                                      \
    ++dcache_hits;                                                       \
    if (paged) {                                                         \
      ++tlb_hits;                                                        \
    }                                                                    \
    sb_pend.valid = true;                                                \
    sb_pend.pc = es->addr;                                               \
    sb_pend.kind = es->d.kind;                                           \
    sb_pend.metal = false;                                               \
    sb_pend.is_store = sb_st;                                            \
    sb_pend.vaddr = sb_va;                                               \
    sb_pend.paddr = sb_pa;                                               \
    sb_pend.store_value = MSIM_SB_B;                                     \
    sb_pend.raw = es->raw;                                               \
    sb_pend.rd = es->d.rd;                                               \
    sb_pend.wait = 1;                                                    \
    sb_pend.target = MemOp::Target::kDram;                               \
    sb_mem_any = true;                                                   \
    if (!sb_st) {                                                        \
      load_dispatch_cycle = cycle_;                                      \
      ex_load_rd = es->d.rd;                                             \
    }                                                                    \
  } while (0)

// Retire bookkeeping, identical to ExecuteAluOp's tail for a non-Metal op.
#define MSIM_SB_RETIRE(s)                                                \
  do {                                                                   \
    ++retired;                                                           \
    ++stats_.instret;                                                    \
    tracer_.Emit(TraceEventKind::kRetire, (s).addr, (s).raw, 0, false);  \
    if (retire_trace_) {                                                 \
      retire_trace_(RetireEvent{cycle_, (s).addr, (s).raw, false});      \
    }                                                                    \
  } while (0)

// Operand shorthands (pure register-file reads; x0 is hardwired zero by
// WriteReg never storing to it, so reads index the array directly).
#define MSIM_SB_A (regs_[es->rs1])
#define MSIM_SB_B (regs_[es->rs2])
#define MSIM_SB_SA (static_cast<int32_t>(regs_[es->rs1]))
#define MSIM_SB_SB (static_cast<int32_t>(regs_[es->rs2]))

// A straight-line op: fetch check, commit, pending completion (MEM before
// EX: a pending load's rd lands before this op's rd, which may alias it),
// rd writeback, retire, advance.
#define MSIM_SB_ALU(label_name, expr)                                    \
  label_name : {                                                         \
    MSIM_SB_FETCH_OR_EXIT();                                             \
    ++cycle_;                                                            \
    MSIM_SB_COMPLETE_PEND();                                             \
    if (es->rd != 0) {                                                   \
      regs_[es->rd] = (expr);                                            \
    }                                                                    \
    MSIM_SB_RETIRE(*es);                                                 \
    last_redirect = false;                                               \
    MSIM_SB_COMMIT_FETCH();                                              \
    goto sb_next;                                                        \
  }

// A conditional branch: taken resolves via sb_taken_cond (bias counters and
// possible tree transition) with no fetch — the speculative fall-through
// word is squashed, exactly as per-cycle; not-taken is a straight-line
// cycle with no writeback. Operands read the CURRENT register file: any
// pending load completing this cycle has an older rd (stall_after would
// have inserted the bubble otherwise), so evaluation before completion is
// safe. Bias counters freeze once the slot is linked or refused.
#define MSIM_SB_BRANCH(label_name, cond)                                 \
  label_name : {                                                         \
    if (cond) {                                                          \
      sb_tgt = es->target;                                               \
      goto sb_taken_cond;                                                \
    }                                                                    \
    MSIM_SB_FETCH_OR_EXIT();                                             \
    ++cycle_;                                                            \
    MSIM_SB_COMPLETE_PEND();                                             \
    if (es->taken_seg == kSbSegUnlinked) {                               \
      ++es->nottaken_n;                                                  \
    }                                                                    \
    MSIM_SB_RETIRE(*es);                                                 \
    last_redirect = false;                                               \
    MSIM_SB_COMMIT_FETCH();                                              \
    goto sb_next;                                                        \
  }

  while (cycle_ - start < max_cycles && cycle_ + 1 < horizon &&
         (max_retires == 0 || retired < max_retires)) {
    // ---- Superblock tier (cpu/superblock.h) ------------------------------
    // Entered only at refill points — both latches empty, which is exactly
    // the state after a taken branch or a cold window entry — so every
    // window-entry guard (horizon, no pending interrupt, not Metal) is
    // already established and stays valid across the whole trace: in-trace
    // memory slots are DRAM-only, so no MMIO write can move a device's next
    // event, and no interrupt can become pending before the horizon.
    if (sb_on && !ex_valid && !id_valid) {
      Superblock* sb = superblocks_.Lookup(pc);
      if (sb == nullptr) {
        sb = superblocks_.Build(pc, bus_.dram(), sb_as);
      } else if (sb->grow_pending) {
        // Deferred tree growth (a biased branch observed by an earlier
        // executor run) applies only here: the walk reallocates slot
        // storage, which must never happen while executor slot pointers
        // are live.
        superblocks_.MaybeGrow(*sb, bus_.dram(), sb_as,
                               config_.superblock_max_trees);
      }
      uint32_t sb_entry_delta = 0;
      const uint32_t sb_entry_len =
          sb != nullptr ? sb_seg_ready(sb->segs[0], &sb_entry_delta) : 0;
      if (sb_entry_len >= kSuperblockMinLen) {
        superblocks_.CountExecution();
        const uint64_t sb_entry_retired = retired;
        SbSlot* slots = sb->slots.data();
        int32_t len = static_cast<int32_t>(sb_entry_len);
        int32_t exec_len =
            sb->exec_len < sb_entry_len ? static_cast<int32_t>(sb->exec_len) : len;
        // Physical rebase for the current segment's slot addresses (0 when
        // unpaged or identity-mapped).
        uint32_t fdelta = sb_entry_delta;
        // Slot position of the EX stage this cycle; -2/-1 are the two
        // refill cycles before slots[0] reaches EX. Invariant after every
        // committed cycle at depth 0: EX holds slot e, ID holds slot e + 1,
        // the next fetch is slot e + 2. A load-use stall enters the skid
        // regime (depth 1): the buffer holds slot e + 2 and fetches run one
        // ahead, until a redirect drains it — exactly the per-cycle skid.
        int32_t e = -2;
        int32_t depth = 0;
        bool in_bubble = false;  // load-use bubble cycle in flight
        const SbSlot* sh_ex = nullptr;
        const SbSlot* sh_id = nullptr;
        const SbSlot* sh_buf = nullptr;
        SbSlot* es = nullptr;
        bool sb_hit = false;
        uint32_t sb_tgt = 0;

#if defined(__GNUC__) || defined(__clang__)
        // Threaded dispatch: one indirect jump per instruction, indexed by
        // the build-time executor opcode. Order must match SbExec exactly.
        static const void* const kSbGoto[] = {
            &&sb_x_const, &&sb_x_addi, &&sb_x_slti, &&sb_x_sltiu,
            &&sb_x_xori, &&sb_x_ori, &&sb_x_andi, &&sb_x_slli, &&sb_x_srli,
            &&sb_x_srai, &&sb_x_add, &&sb_x_sub, &&sb_x_sll, &&sb_x_slt,
            &&sb_x_sltu, &&sb_x_xor, &&sb_x_srl, &&sb_x_sra, &&sb_x_or,
            &&sb_x_and, &&sb_x_fence, &&sb_x_mul, &&sb_x_mulh,
            &&sb_x_mulhsu, &&sb_x_mulhu, &&sb_x_div, &&sb_x_divu,
            &&sb_x_rem, &&sb_x_remu, &&sb_x_jal, &&sb_x_jalr, &&sb_x_beq,
            &&sb_x_bne, &&sb_x_blt, &&sb_x_bge, &&sb_x_bltu, &&sb_x_bgeu,
            &&sb_x_mem, &&sb_x_mem, &&sb_x_mem, &&sb_x_mem, &&sb_x_mem,
            &&sb_x_mem, &&sb_x_mem, &&sb_x_mem};
        static_assert(sizeof(kSbGoto) / sizeof(kSbGoto[0]) ==
                      static_cast<size_t>(SbExec::kCount));
#endif

      sb_next:
        // The generic loop's per-cycle budget/horizon condition, with one
        // tightening: a cycle whose MEM stage completes a pending op can
        // retire TWO instructions (the completion plus the EX op), so a
        // live pending op reserves one unit of retire budget. Exiting a
        // cycle early is always sound — every exit is a per-cycle-exact
        // state — and the bound is what RunRetireLockstep relies on.
        if (!(cycle_ - start < max_cycles && cycle_ + 1 < horizon &&
              (max_retires == 0 ||
               retired + (sb_pend.valid ? 1u : 0u) < max_retires))) {
          goto sb_exit_uncommitted;
        }
        if (e < 0) {
          // Refill cycle: nothing in EX yet, fetch only.
          MSIM_SB_FETCH_OR_EXIT();
          ++cycle_;
          last_redirect = false;
          MSIM_SB_COMMIT_FETCH();
          goto sb_next;
        }
        es = &slots[e];
#if defined(__GNUC__) || defined(__clang__)
        goto *kSbGoto[static_cast<uint8_t>(es->exec)];
#else
        switch (es->exec) {
          case SbExec::kConst: goto sb_x_const;
          case SbExec::kAddi: goto sb_x_addi;
          case SbExec::kSlti: goto sb_x_slti;
          case SbExec::kSltiu: goto sb_x_sltiu;
          case SbExec::kXori: goto sb_x_xori;
          case SbExec::kOri: goto sb_x_ori;
          case SbExec::kAndi: goto sb_x_andi;
          case SbExec::kSlli: goto sb_x_slli;
          case SbExec::kSrli: goto sb_x_srli;
          case SbExec::kSrai: goto sb_x_srai;
          case SbExec::kAdd: goto sb_x_add;
          case SbExec::kSub: goto sb_x_sub;
          case SbExec::kSll: goto sb_x_sll;
          case SbExec::kSlt: goto sb_x_slt;
          case SbExec::kSltu: goto sb_x_sltu;
          case SbExec::kXor: goto sb_x_xor;
          case SbExec::kSrl: goto sb_x_srl;
          case SbExec::kSra: goto sb_x_sra;
          case SbExec::kOr: goto sb_x_or;
          case SbExec::kAnd: goto sb_x_and;
          case SbExec::kFence: goto sb_x_fence;
          case SbExec::kMul: goto sb_x_mul;
          case SbExec::kMulh: goto sb_x_mulh;
          case SbExec::kMulhsu: goto sb_x_mulhsu;
          case SbExec::kMulhu: goto sb_x_mulhu;
          case SbExec::kDiv: goto sb_x_div;
          case SbExec::kDivu: goto sb_x_divu;
          case SbExec::kRem: goto sb_x_rem;
          case SbExec::kRemu: goto sb_x_remu;
          case SbExec::kJal: goto sb_x_jal;
          case SbExec::kJalr: goto sb_x_jalr;
          case SbExec::kBeq: goto sb_x_beq;
          case SbExec::kBne: goto sb_x_bne;
          case SbExec::kBlt: goto sb_x_blt;
          case SbExec::kBge: goto sb_x_bge;
          case SbExec::kBltu: goto sb_x_bltu;
          case SbExec::kBgeu: goto sb_x_bgeu;
          case SbExec::kLb:
          case SbExec::kLbu:
          case SbExec::kLh:
          case SbExec::kLhu:
          case SbExec::kLw:
          case SbExec::kSb:
          case SbExec::kSh:
          case SbExec::kSw: goto sb_x_mem;
          default: goto sb_exit_uncommitted;
        }
#endif

        MSIM_SB_ALU(sb_x_const, es->cval)
        MSIM_SB_ALU(sb_x_addi, MSIM_SB_A + es->imm)
        MSIM_SB_ALU(sb_x_slti,
                    MSIM_SB_SA < static_cast<int32_t>(es->imm) ? 1u : 0u)
        MSIM_SB_ALU(sb_x_sltiu, MSIM_SB_A < es->imm ? 1u : 0u)
        MSIM_SB_ALU(sb_x_xori, MSIM_SB_A ^ es->imm)
        MSIM_SB_ALU(sb_x_ori, MSIM_SB_A | es->imm)
        MSIM_SB_ALU(sb_x_andi, MSIM_SB_A & es->imm)
        MSIM_SB_ALU(sb_x_slli, MSIM_SB_A << es->imm)
        MSIM_SB_ALU(sb_x_srli, MSIM_SB_A >> es->imm)
        MSIM_SB_ALU(sb_x_srai,
                    static_cast<uint32_t>(MSIM_SB_SA >> es->imm))
        MSIM_SB_ALU(sb_x_add, MSIM_SB_A + MSIM_SB_B)
        MSIM_SB_ALU(sb_x_sub, MSIM_SB_A - MSIM_SB_B)
        MSIM_SB_ALU(sb_x_sll, MSIM_SB_A << (MSIM_SB_B & 31))
        MSIM_SB_ALU(sb_x_slt, MSIM_SB_SA < MSIM_SB_SB ? 1u : 0u)
        MSIM_SB_ALU(sb_x_sltu, MSIM_SB_A < MSIM_SB_B ? 1u : 0u)
        MSIM_SB_ALU(sb_x_xor, MSIM_SB_A ^ MSIM_SB_B)
        MSIM_SB_ALU(sb_x_srl, MSIM_SB_A >> (MSIM_SB_B & 31))
        MSIM_SB_ALU(sb_x_sra,
                    static_cast<uint32_t>(MSIM_SB_SA >> (MSIM_SB_B & 31)))
        MSIM_SB_ALU(sb_x_or, MSIM_SB_A | MSIM_SB_B)
        MSIM_SB_ALU(sb_x_and, MSIM_SB_A & MSIM_SB_B)

      sb_x_fence : {
        MSIM_SB_FETCH_OR_EXIT();
        ++cycle_;
        MSIM_SB_RETIRE(*es);
        last_redirect = false;
        MSIM_SB_COMMIT_FETCH();
        goto sb_next;
      }

        MSIM_SB_ALU(sb_x_mul, MSIM_SB_A * MSIM_SB_B)
        MSIM_SB_ALU(sb_x_mulh,
                    static_cast<uint32_t>((static_cast<int64_t>(MSIM_SB_SA) *
                                           static_cast<int64_t>(MSIM_SB_SB)) >>
                                          32))
        MSIM_SB_ALU(sb_x_mulhsu,
                    static_cast<uint32_t>((static_cast<int64_t>(MSIM_SB_SA) *
                                           static_cast<uint64_t>(MSIM_SB_B)) >>
                                          32))
        MSIM_SB_ALU(sb_x_mulhu,
                    static_cast<uint32_t>((static_cast<uint64_t>(MSIM_SB_A) *
                                           static_cast<uint64_t>(MSIM_SB_B)) >>
                                          32))
        MSIM_SB_ALU(sb_x_div,
                    MSIM_SB_B == 0 ? 0xFFFFFFFFu
                    : (MSIM_SB_SA == INT32_MIN && MSIM_SB_SB == -1)
                        ? static_cast<uint32_t>(INT32_MIN)
                        : static_cast<uint32_t>(MSIM_SB_SA / MSIM_SB_SB))
        MSIM_SB_ALU(sb_x_divu,
                    MSIM_SB_B == 0 ? 0xFFFFFFFFu : MSIM_SB_A / MSIM_SB_B)
        MSIM_SB_ALU(sb_x_rem,
                    MSIM_SB_B == 0 ? MSIM_SB_A
                    : (MSIM_SB_SA == INT32_MIN && MSIM_SB_SB == -1)
                        ? 0u
                        : static_cast<uint32_t>(MSIM_SB_SA % MSIM_SB_SB))
        MSIM_SB_ALU(sb_x_remu,
                    MSIM_SB_B == 0 ? MSIM_SB_A : MSIM_SB_A % MSIM_SB_B)

      sb_x_jal:
        sb_tgt = es->target;
        goto sb_taken_link;
      sb_x_jalr:
        // Target reads rs1 BEFORE the link write (rd may alias rs1). A
        // pending load completing this cycle cannot feed rs1 (stall_after
        // would have inserted the bubble), so pre-completion read is exact.
        sb_tgt = (MSIM_SB_A + es->imm) & ~1u;
        goto sb_taken_link;
      sb_taken_link:
        ++cycle_;
        MSIM_SB_COMPLETE_PEND();  // MEM's rd write lands before the link's
        if (es->rd != 0) {
          regs_[es->rd] = es->cval;  // pc + 4, folded at build
        }
        goto sb_taken_commit;

        MSIM_SB_BRANCH(sb_x_beq, MSIM_SB_A == MSIM_SB_B)
        MSIM_SB_BRANCH(sb_x_bne, MSIM_SB_A != MSIM_SB_B)
        MSIM_SB_BRANCH(sb_x_blt, MSIM_SB_SA < MSIM_SB_SB)
        MSIM_SB_BRANCH(sb_x_bge, MSIM_SB_SA >= MSIM_SB_SB)
        MSIM_SB_BRANCH(sb_x_bltu, MSIM_SB_A < MSIM_SB_B)
        MSIM_SB_BRANCH(sb_x_bgeu, MSIM_SB_A >= MSIM_SB_B)

      sb_x_mem : {
        // A memory slot in EX: StartMemOp's fast path, pre-checked with no
        // side effects. Any slow condition — misalignment (a fault
        // per-cycle), TLB miss or permission/key failure, MMIO or
        // out-of-bounds physical target, dcache miss — exits the trace
        // UNCOMMITTED and replays the op through the per-cycle machinery,
        // which counts the miss, raises the fault or models the latency.
        const uint32_t sb_size = SbMemSize(es->exec);
        const bool sb_st = SbIsStore(es->exec);
        const uint32_t sb_va = MSIM_SB_A + es->imm;
        if ((sb_va & (sb_size - 1)) != 0) {
          goto sb_exit_mem_slow;
        }
        uint32_t sb_pa = sb_va;
        if (paged) {
          const TranslateResult sb_tr = mmu_.ProbeTranslate(
              sb_va, sb_st ? AccessType::kStore : AccessType::kLoad, asid,
              keyperm);
          if (!sb_tr.ok) {
            goto sb_exit_mem_slow;
          }
          sb_pa = sb_tr.paddr;
        }
        if (sb_pa >= kMmioBase || sb_pa + sb_size > dram_size ||
            !dcache_.Probe(sb_pa)) {
          goto sb_exit_mem_slow;
        }
        if (!es->stall_after) {
          // Plain dispatch: the access becomes the pending MEM op and the
          // frontend keeps streaming.
          MSIM_SB_FETCH_OR_EXIT();
          ++cycle_;
          MSIM_SB_COMPLETE_PEND();
          MSIM_SB_MEM_DISPATCH();
          last_redirect = false;
          MSIM_SB_COMMIT_FETCH();
          goto sb_next;
        }
        // Load-use stall: the next slot reads this load's rd, so StageId
        // holds it and emits kStall. At depth 0 the cycle's fetch still
        // runs, parking its word in the skid buffer; at depth 1 the buffer
        // is already held and NO fetch starts (pc unchanged). Either way
        // the next cycle is a forced bubble.
        if (depth == 0) {
          MSIM_SB_FETCH_OR_EXIT();
          ++cycle_;
          MSIM_SB_COMPLETE_PEND();
          MSIM_SB_MEM_DISPATCH();
          ++stats_.load_use_stalls;
          tracer_.Emit(TraceEventKind::kStall, slots[e + 1].addr, 0, 0,
                       false);
          {
            const SbSlot& sb_fs = slots[e + 2];
            const uint32_t sb_fpa = sb_fs.addr + fdelta;
            ++icache_hits;
            if (paged) {
              ++tlb_hits;
            }
            if (sb_hit) {
              ++predecode_hits;
            } else if (predecode_.Verify(sb_fpa, gen, sb_fs.raw) == nullptr) {
              predecode_.Insert(sb_fpa, gen, sb_fs.raw, sb_fs.d);
            }
            sh_buf = &sb_fs;
            fetched_any = true;
            pc = sb_fs.addr + 4;
            depth = 1;
          }
          last_redirect = false;
          goto sb_bubble;
        }
        if (e + 1 >= exec_len) {
          goto sb_exit_uncommitted;  // unreachable: stall_after implies a next exec slot
        }
        ++cycle_;
        MSIM_SB_COMPLETE_PEND();
        MSIM_SB_MEM_DISPATCH();
        ++stats_.load_use_stalls;
        tracer_.Emit(TraceEventKind::kStall, slots[e + 1].addr, 0, 0, false);
        last_redirect = false;
        goto sb_bubble;
      }

      sb_bubble:
        // The forced cycle after a load-use stall: EX is empty (no
        // dispatch, no retire from EX), the stalled consumer advances from
        // the buffer into ID next, and the frontend fetches one ahead. The
        // stalled load itself completes at the top of this cycle.
        in_bubble = true;
        if (!(cycle_ - start < max_cycles && cycle_ + 1 < horizon &&
              (max_retires == 0 ||
               retired + (sb_pend.valid ? 1u : 0u) < max_retires))) {
          goto sb_exit_uncommitted;
        }
        MSIM_SB_FETCH_OR_EXIT();
        ++cycle_;
        MSIM_SB_COMPLETE_PEND();
        last_redirect = false;
        MSIM_SB_COMMIT_FETCH();
        in_bubble = false;
        goto sb_next;

      sb_taken_cond:
        // Taken conditional branch: bias bookkeeping and tree transitions.
        if (es->taken_seg >= 1) {
          // The hot side was inlined as a tree segment. Entering it is the
          // same committed redirect cycle, continued in the new segment
          // without leaving the executor.
          const SbSegment& sb_tseg = sb->segs[es->taken_seg];
          uint32_t sb_tdelta = 0;
          const uint32_t sb_tlen = sb_seg_ready(sb_tseg, &sb_tdelta);
          if (sb_tlen >= kSuperblockMinLen) {
            ++cycle_;
            MSIM_SB_COMPLETE_PEND();
            ++stats_.control_flushes;
            RedirectFetch(sb_tgt);
            MSIM_SB_RETIRE(*es);
            last_redirect = true;
            pc = fetch_pc_;
            superblocks_.CountTreeTransition();
            slots = sb->slots.data() + sb_tseg.base;
            len = static_cast<int32_t>(sb_tlen);
            exec_len = sb_tseg.exec_len < sb_tlen
                           ? static_cast<int32_t>(sb_tseg.exec_len)
                           : len;
            fdelta = sb_tdelta;
            e = -2;
            depth = 0;  // the redirect drained any live skid
            goto sb_next;
          }
        } else if (es->taken_seg == kSbSegUnlinked) {
          ++es->taken_n;
          if (es->taken_n >= kSbGrowMinTaken &&
              es->nottaken_n * 8 <= es->taken_n && !sb->grow_pending) {
            // Strongly biased: request growth. Applied at the next
            // trace-entry point, never mid-execution (see entry block).
            sb->grow_pending = true;
            sb->grow_slot = static_cast<uint32_t>(es - sb->slots.data());
          }
        }
      sb_taken:
        ++cycle_;
        MSIM_SB_COMPLETE_PEND();
      sb_taken_commit:
        // ExecuteAluOp's taken-branch order: flush (kFlush event) first,
        // retire (kRetire event) second.
        ++stats_.control_flushes;
        RedirectFetch(sb_tgt);
        MSIM_SB_RETIRE(*es);
        last_redirect = true;
        pc = fetch_pc_;
        depth = 0;  // the redirect drained any live skid
        // EX consumed, ID squashed; sh_ex/sh_id keep their (now stale)
        // payloads, exactly like the member latches in a per-cycle run.
        {
          Superblock* sb_nt = superblocks_.Lookup(pc);
          uint32_t sb_nt_delta = 0;
          const uint32_t sb_nt_len =
              sb_nt != nullptr ? sb_seg_ready(sb_nt->segs[0], &sb_nt_delta) : 0;
          if (sb_nt_len >= kSuperblockMinLen) {
            // Chain: the branch target starts another cached trace. Stale
            // payload pointers stay valid — invalidation never frees slot
            // storage, and Build cannot run inside the executor.
            superblocks_.CountChain();
            sb = sb_nt;
            slots = sb_nt->slots.data();
            len = static_cast<int32_t>(sb_nt_len);
            exec_len = sb_nt->exec_len < sb_nt_len
                           ? static_cast<int32_t>(sb_nt->exec_len)
                           : len;
            fdelta = sb_nt_delta;
            e = -2;
            goto sb_next;
          }
        }
        // No trace at the target: exit in the committed post-redirect state
        // (both latches empty, buffer drained by the flush). The loop top
        // may build one there.
        if (sh_ex != nullptr) {
          ex_pc = sh_ex->addr;
          ex_d = sh_ex->d;
        }
        if (sh_id != nullptr) {
          id_pc = sh_id->addr;
          id_raw = sh_id->raw;
          id_d = sh_id->d;
          id_metal = false;
          id_fault = ExcCause::kNone;
          id_fault_addr = 0;
        }
        if (sh_buf != nullptr) {
          buf_pc = sh_buf->addr;
          buf_raw = sh_buf->raw;
          buf_d = sh_buf->d;
          buf_from_trace = true;
        }
        buf_valid = false;
        ex_valid = false;
        id_valid = false;
        superblocks_.CreditInstructions(retired - sb_entry_retired);
        continue;

      sb_exit_mem_slow:
        // A memory slot that cannot take the fast path: exit uncommitted
        // with the op still in the EX latch. The window then breaks (the
        // op is not window-safe) and StepCycle replays it with full
        // per-cycle semantics — miss counting, MMIO routing, faults.
        superblocks_.CountMemSlowExit();
        goto sb_exit_uncommitted;
      sb_exit_stale:
        // A raw word no longer matches the backing store (the write that
        // changed it — an external poke, a loader, or THIS trace's own
        // pending store — forces the re-read above). Invalidate before the
        // fetching cycle commits.
        superblocks_.Invalidate(*sb);
      sb_exit_uncommitted:
        // Exit BEFORE the current cycle commits, materializing the latch
        // shadows exactly as a per-cycle run would hold them here: slot e
        // in EX (unless this is a bubble cycle, whose EX is empty), slot
        // e + 1 in ID, the skid word in the buffer, consumed payloads stale
        // in place. The generic loop continues this very cycle
        // interpretively, or the whole window breaks when the pipeline
        // state is beyond it: a pending MEM op, a live skid, or a
        // non-window-safe (memory) op latched in EX.
        if (sh_ex != nullptr) {
          ex_pc = sh_ex->addr;
          ex_d = sh_ex->d;
        }
        if (sh_id != nullptr) {
          id_pc = sh_id->addr;
          id_raw = sh_id->raw;
          id_d = sh_id->d;
          id_metal = false;
          id_fault = ExcCause::kNone;
          id_fault_addr = 0;
        }
        if (sh_buf != nullptr) {
          buf_pc = sh_buf->addr;
          buf_raw = sh_buf->raw;
          buf_d = sh_buf->d;
          buf_from_trace = true;
        }
        buf_valid = depth != 0;
        ex_valid = e >= 0 && !in_bubble;
        id_valid = e + 1 >= 0 && e + 1 < len;
        superblocks_.CreditInstructions(retired - sb_entry_retired);
        if (sb_pend.valid || depth != 0 ||
            (ex_valid && !WindowSafe(ex_d.kind))) {
          break;
        }
        continue;
      }
    }
    // ---- end superblock tier ---------------------------------------------

    // Decide, without side effects, what this cycle would do.
    const bool taken = ex_valid && AluRedirects(ex_d);
    uint32_t fetch_raw = 0;
    Decoded fetch_dec;
    const Decoded* fetch_hit = nullptr;
    uint32_t fetch_pa = pc;  // physical predecode/icache key
    if (!taken) {
      // The latched word shifts into ID/EX this cycle and executes next; that
      // is only in-window for a faultless, window-safe instruction. (On a
      // taken branch the latch is squashed instead, so any speculatively
      // fetched fall-through word — a halt, a store — never reaches ID.)
      if (id_valid && (id_metal || id_fault != ExcCause::kNone ||
                       !WindowSafe(id_d.kind))) {
        break;
      }
      // IF starts (and, at hit latency 1, completes) a fetch this cycle; it
      // must be a faultless 1-cycle DRAM icache-hit fetch, or we leave the
      // cycle to StepCycle. The *kind* of the fetched word does not matter
      // yet — fetching is speculative and side-effect-free beyond counters.
      // (pc >= kMmioBase also covers the MRAM code range, which sits above
      // it — per-cycle would fetch there only in Metal mode anyway.)
      if ((pc & 3) != 0 || pc >= kMmioBase) {
        break;
      }
      if (paged) {
        const TranslateResult tr =
            mmu_.ProbeTranslate(pc, AccessType::kFetch, asid, keyperm);
        if (!tr.ok) {
          break;  // per-cycle counts the miss / raises the fault
        }
        fetch_pa = tr.paddr;
      }
      if (fetch_pa >= kMmioBase || fetch_pa + 4 > dram_size ||
          !icache_.Probe(fetch_pa)) {
        break;
      }
      fetch_hit = predecode_.Peek(fetch_pa, gen);
      if (fetch_hit == nullptr) {
        const auto word = bus_.dram().Read32(fetch_pa);
        if (!word) {
          break;
        }
        fetch_raw = *word;
        fetch_dec = DecodeInstr(fetch_raw);
      }
    }

    // Commit the cycle (the StepCycle sequence minus the skipped work: no
    // fault engine, not Metal, no watchdog exposure, no device tick before
    // the horizon, MEM empty).
    ++cycle_;
    if (ex_valid) {
      ex_op.pc = ex_pc;
      ex_op.d = ex_d;
      ExecuteAluOp(ex_op);  // retires; may RedirectFetch (matching `taken`)
      ++retired;
      ex_valid = false;
    }
    last_redirect = taken;
    if (taken) {
      // RedirectFetch ran inside ExecuteAluOp: frontend flushed, member
      // fetch_pc_ holds the branch target. Resync the shadows it touched.
      id_valid = false;
      pc = fetch_pc_;
      continue;
    }
    if (id_valid) {
      // StageId, with the checks that cannot fire in-window elided: no
      // load-use stall (no loads), no interrupt, no intercept, no
      // replacement chain (no menter).
      ex_valid = true;
      ex_pc = id_pc;
      ex_d = id_d;
      shifted_any = true;
    }
    // StageIf with the pre-verified 1-cycle fetch: the wait elapses within
    // the cycle and delivery is same-cycle (IF/ID is always free here), so
    // fetch_inflight_/fetch_wait_ end the cycle unchanged. A Probe+Peek hit
    // only counts — tallied locally, credited in bulk at exit; the rare
    // verify/miss path runs its counting calls in place.
    ++icache_hits;
    if (paged) {
      ++tlb_hits;
    }
    if (fetch_hit != nullptr) {
      ++predecode_hits;
      id_d = *fetch_hit;
      id_raw = id_d.raw;
    } else if (const Decoded* v = predecode_.Verify(fetch_pa, gen, fetch_raw)) {
      id_d = *v;
      id_raw = fetch_raw;
    } else {
      predecode_.Insert(fetch_pa, gen, fetch_raw, fetch_dec);
      id_d = fetch_dec;
      id_raw = fetch_raw;
    }
    id_pc = pc;
    id_metal = false;
    id_fault = ExcCause::kNone;
    id_fault_addr = 0;
    id_valid = true;
    fetched_any = true;
    buf_from_trace = false;  // same-cycle delivery: buffer payload == IF/ID
    pc += 4;
  }

#undef MSIM_SB_FETCH_OR_EXIT
#undef MSIM_SB_COMMIT_FETCH
#undef MSIM_SB_COMPLETE_PEND
#undef MSIM_SB_MEM_DISPATCH
#undef MSIM_SB_RETIRE
#undef MSIM_SB_A
#undef MSIM_SB_B
#undef MSIM_SB_SA
#undef MSIM_SB_SB
#undef MSIM_SB_ALU
#undef MSIM_SB_BRANCH

  const uint64_t committed = cycle_ - start;
  if (committed != 0) {
    // Exact member-state writeback. Fields a per-cycle run would have left
    // untouched get their (identical) shadow values back; fields it would
    // have reset get the reset value.
    stats_.cycles = cycle_;
    metal_resident_cycles_ = 0;
    redirect_this_cycle_ = last_redirect;
    // True iff the LAST committed cycle dispatched a load (per-cycle resets
    // this every cycle and only a load's StageEx sets it).
    ex_load_this_cycle_ = load_dispatch_cycle == cycle_;
    ex_load_rd_ = ex_load_rd;
    if (sb_mem_any) {
      // Live pending op (valid, wait 1) or the stale payload of the last
      // completed one (valid false, wait 0) — both byte-identical to what
      // per-cycle StageMem would have left in the latch.
      ex_mem_ = sb_pend;
    }
    icache_.CreditHits(icache_hits);
    predecode_.CreditHits(predecode_hits);
    dcache_.CreditHits(dcache_hits);
    mmu_.tlb().CreditHits(tlb_hits);
    id_ex_.valid = ex_valid;
    id_ex_.pc = ex_pc;
    id_ex_.d = ex_d;
    if (shifted_any) {
      // The latch went through (shadow) StageId, which default-constructs the
      // op: every non-(pc,d) field is reset. Without a shift the entry values
      // — possibly stale non-defaults — are still in place, correctly.
      id_ex_.metal = false;
      id_ex_.enters = 0;
      id_ex_.exits = 0;
      id_ex_.link = 0;
      id_ex_.chain = {};
      id_ex_.chain_len = 0;
      id_ex_.intercepted = false;
      id_ex_.intercept_entry = 0;
      id_ex_.fetch_fault = ExcCause::kNone;
      id_ex_.fetch_fault_addr = 0;
    }
    if_id_.valid = id_valid;
    if_id_.pc = id_pc;
    if_id_.raw = id_raw;
    if_id_.d = id_d;
    if_id_.metal = id_metal;
    if_id_.fault = id_fault;
    if_id_.fault_addr = id_fault_addr;
    if (buf_from_trace) {
      // The last started fetch was a trace fetch tracked by sh_buf — under
      // a live skid its word differs from the IF/ID payload.
      fetch_buffer_.pc = buf_pc;
      fetch_buffer_.raw = buf_raw;
      fetch_buffer_.d = buf_d;
      fetch_buffer_.metal = false;
      fetch_buffer_.fault = ExcCause::kNone;
      fetch_buffer_.fault_addr = 0;
    } else if (fetched_any) {
      // Generic-loop fetches deliver same-cycle: the buffer payload and the
      // IF/ID payload are the same word.
      fetch_buffer_.pc = id_pc;
      fetch_buffer_.raw = id_raw;
      fetch_buffer_.d = id_d;
      fetch_buffer_.metal = false;
      fetch_buffer_.fault = ExcCause::kNone;
      fetch_buffer_.fault_addr = 0;
    }
    // Held (valid) only when the window broke mid-skid; any committed
    // redirect or same-cycle delivery leaves it empty.
    fetch_buffer_.valid = buf_valid;
    fetch_pc_ = pc;
    // Catch the devices up to the current cycle in one tick. Sound because no
    // committed cycle reached the horizon: the tick observes the new cycle
    // count (e.g. the timer's COUNT register) but cannot fire anything, and
    // it is the FIRST tick at cycle_, so non-idempotent fire paths (periodic
    // timer re-arm) are never re-run.
    bus_.TickDevices(cycle_, intc_);
  }
  return committed;
}

// ---------------------------------------------------------------------------
// Trap machinery
// ---------------------------------------------------------------------------

void Core::Fatal(const std::string& message) {
  if (has_fatal_) {
    return;  // keep the first (root-cause) report
  }
  has_fatal_ = true;
  fatal_ = Internal(message);
  MSIM_LOG(Error) << "fatal: " << message;
}

void Core::ResetFetch(uint32_t pc) {
  fetch_inflight_ = false;
  fetch_wait_ = 0;
  fetch_buffer_.valid = false;
  fetch_pc_ = pc;
}

void Core::FlushFrontend() {
  if_id_.valid = false;
  ResetFetch(fetch_pc_);
}

void Core::RedirectFetch(uint32_t target) {
  FlushFrontend();
  tracer_.Emit(TraceEventKind::kFlush, target, 0, 0, arch_metal_);
  fetch_pc_ = target;
  redirect_this_cycle_ = true;
}

void Core::TakeTrapToEntry(uint32_t entry, uint32_t cause, uint32_t epc, uint32_t badvaddr,
                           uint32_t instr, uint32_t m31, bool faulting_op_is_metal) {
  if (faulting_op_is_metal) {
    // mroutines are non-interruptible and must not fault (paper §2.1); a
    // fault inside Metal mode is a machine check (recoverable if delegated).
    RaiseMachineCheck(McheckKind::kDoubleTrap, cause, epc);
    return;
  }
  if (entry >= kMaxMroutines) {
    Fatal(StrFormat("undelegated trap: cause 0x%08x (%s) at pc=0x%08x", cause,
                    (cause & kInterruptCauseFlag) != 0
                        ? "interrupt"
                        : ExcCauseName(static_cast<ExcCause>(cause)),
                    epc));
    return;
  }
  const uint32_t handler = metal_.EntryAddress(entry);
  if (handler == 0) {
    Fatal(StrFormat("trap delegated to unconfigured mroutine entry %u (cause 0x%08x)", entry,
                    cause));
    return;
  }
  // Squash younger in-flight work. A speculatively entered/exited Metal mode
  // in ID/EX latches is rolled back to the committed mode.
  if (id_ex_.valid) {
    if (id_ex_.has_transition()) {
      --inflight_mode_ops_;
    }
    id_ex_.valid = false;
  }
  tracer_.Emit((cause & kInterruptCauseFlag) != 0 ? TraceEventKind::kInterrupt
                                                  : TraceEventKind::kTrap,
               epc, cause, entry);
  metal_.SetTrapState(cause, epc, badvaddr, instr);
  metal_.WriteMreg(kMetalLinkRegister, m31);
  arch_metal_ = true;
  frontend_metal_ = true;
  last_metal_entry_ = static_cast<uint8_t>(entry);
  RedirectFetch(handler);
}

void Core::RaiseMachineCheck(McheckKind kind, uint32_t info, uint32_t epc) {
  ++stats_.machine_checks;
  tracer_.Emit(TraceEventKind::kMachineCheck, epc, static_cast<uint32_t>(kind), info,
               arch_metal_);
  std::string detail;
  switch (kind) {
    case McheckKind::kMramCodeParity:
      detail = StrFormat("MRAM code parity error at 0x%08x", info);
      break;
    case McheckKind::kMramDataParity:
      detail = StrFormat("MRAM data parity error at offset 0x%08x", info);
      break;
    case McheckKind::kWatchdog:
      detail = StrFormat("mroutine entry %u exceeded the %llu-cycle Metal-mode watchdog budget",
                         info,
                         static_cast<unsigned long long>(config_.metal_watchdog_cycles));
      break;
    case McheckKind::kDoubleTrap:
      detail = StrFormat("trap (cause 0x%08x) raised by a Metal-mode instruction", info);
      break;
    default:
      detail = "unknown machine-check kind";
      break;
  }
  // Record the check in the MCHECK* registers before deciding deliverability,
  // so a crash dump of an undelegated (fatal) check still names it. m31 is
  // left untouched: it still holds the aborted mroutine's resume address, so
  // the recovery mroutine's mexit returns to the interrupted normal-mode
  // program. A copy lands in MCHECKM31 (together with MEPC) so the handler
  // can instead retry the faulting Metal-mode instruction by rewriting m31
  // (mexit resumes into Metal mode for MRAM addresses).
  metal_.SetMachineCheckState(kind, info, metal_.ReadMreg(kMetalLinkRegister));
  metal_.SetTrapState(static_cast<uint32_t>(ExcCause::kMachineCheck), epc, info, 0);
  if (in_machine_check_) {
    // A machine check while one is being handled cannot recurse into the
    // (evidently broken) recovery mroutine.
    Fatal(StrFormat("double machine check (%s) at pc=0x%08x: %s", McheckKindName(kind), epc,
                    detail.c_str()));
    return;
  }
  const uint32_t entry = metal_.DelegatedEntry(ExcCause::kMachineCheck);
  if (entry >= kMaxMroutines || metal_.EntryAddress(entry) == 0) {
    Fatal(StrFormat("undelegated machine check (%s) at pc=0x%08x: %s", McheckKindName(kind),
                    epc, detail.c_str()));
    return;
  }
  // Squash younger in-flight work, rolling back speculative mode transitions.
  if (id_ex_.valid) {
    if (id_ex_.has_transition()) {
      --inflight_mode_ops_;
    }
    id_ex_.valid = false;
  }
  in_machine_check_ = true;
  arch_metal_ = true;
  frontend_metal_ = true;
  last_metal_entry_ = static_cast<uint8_t>(entry);
  RedirectFetch(metal_.EntryAddress(entry));
}

void Core::TakeException(ExcCause cause, uint32_t epc, uint32_t badvaddr, uint32_t instr,
                         uint32_t m31, bool faulting_op_is_metal) {
  ++stats_.exceptions;
  const uint32_t entry = metal_.DelegatedEntry(cause);
  TakeTrapToEntry(entry, static_cast<uint32_t>(cause), epc, badvaddr, instr, m31,
                  faulting_op_is_metal);
}

// ---------------------------------------------------------------------------
// MEM stage
// ---------------------------------------------------------------------------

void Core::StageMem() {
  if (!ex_mem_.valid) {
    return;
  }
  if (ex_mem_.wait > 0) {
    --ex_mem_.wait;
  }
  if (ex_mem_.wait > 0) {
    return;
  }
  const MemOp op = ex_mem_;
  ex_mem_.valid = false;

  bool ok = true;
  uint32_t loaded = 0;
  switch (op.target) {
    case MemOp::Target::kMramData: {
      if (op.is_store) {
        ok = mram_.WriteData32(op.paddr, op.store_value);
      } else {
        const auto value = mram_.ReadData32(op.paddr);
        ok = value.has_value();
        loaded = value.value_or(0);
        if (ok && mram_.DataParityError(op.paddr)) {
          // The corrupted word never reaches the register file.
          RaiseMachineCheck(McheckKind::kMramDataParity, op.paddr, op.pc);
          return;
        }
      }
      break;
    }
    case MemOp::Target::kMmio: {
      if (op.is_store) {
        ok = bus_.Write32(op.paddr, op.store_value);
      } else {
        const auto value = bus_.Read32(op.paddr);
        ok = value.has_value();
        loaded = value.value_or(0);
      }
      break;
    }
    case MemOp::Target::kDram: {
      switch (op.kind) {
        case InstrKind::kLb:
        case InstrKind::kLbu: {
          const auto value = bus_.Read8(op.paddr);
          ok = value.has_value();
          loaded = op.kind == InstrKind::kLb
                       ? static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(
                             value.value_or(0))))
                       : value.value_or(0);
          break;
        }
        case InstrKind::kLh:
        case InstrKind::kLhu: {
          const auto value = bus_.Read16(op.paddr);
          ok = value.has_value();
          loaded = op.kind == InstrKind::kLh
                       ? static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(
                             value.value_or(0))))
                       : value.value_or(0);
          break;
        }
        case InstrKind::kLw:
        case InstrKind::kPlw:
        case InstrKind::kMld: {
          const auto value = bus_.Read32(op.paddr);
          ok = value.has_value();
          loaded = value.value_or(0);
          break;
        }
        case InstrKind::kSb:
          ok = bus_.Write8(op.paddr, static_cast<uint8_t>(op.store_value));
          break;
        case InstrKind::kSh:
          ok = bus_.Write16(op.paddr, static_cast<uint16_t>(op.store_value));
          break;
        case InstrKind::kSw:
        case InstrKind::kPsw:
        case InstrKind::kMst:
          ok = bus_.Write32(op.paddr, op.store_value);
          break;
        default:
          ok = false;
          break;
      }
      break;
    }
  }
  if (!ok) {
    TakeException(ExcCause::kBusError, op.pc, op.vaddr, 0, op.pc, op.metal);
    return;
  }
  // One-shot bus-response corruption (fault injection): the glitch is silent —
  // there is no parity on the system bus, so the bad value simply lands in rd.
  if (bus_fault_armed_ && !op.is_store) {
    bus_fault_armed_ = false;
    loaded = (loaded & bus_fault_and_) ^ bus_fault_xor_;
  }
  if (!op.is_store) {
    WriteReg(op.rd, loaded);
  }
  ++stats_.instret;
  if (op.metal) {
    ++stats_.metal_instret;
  }
  tracer_.Emit(TraceEventKind::kRetire, op.pc, op.raw, 0, op.metal);
  if (retire_trace_) {
    retire_trace_(RetireEvent{cycle_, op.pc, op.raw, op.metal});
  }
}

// ---------------------------------------------------------------------------
// EX stage
// ---------------------------------------------------------------------------

uint32_t Core::DataAccessLatency(uint32_t paddr, bool metal_op) {
  if (paddr >= kMmioBase) {
    return config_.mmio_latency;
  }
  if (metal_op && config_.mroutine_storage == MroutineStorage::kDramUncached) {
    return config_.dram_latency;
  }
  return dcache_.Access(paddr);
}

bool Core::StartMemOp(const Op& op) {
  MemOp mem;
  mem.valid = true;
  mem.pc = op.pc;
  mem.kind = op.d.kind;
  mem.raw = op.d.raw;
  mem.metal = op.metal;
  mem.rd = op.d.rd;
  const InstrInfo& info = op.d.info();
  mem.is_store = info.is_store;
  const uint32_t rs1 = ReadReg(op.d.rs1);
  mem.store_value = ReadReg(op.d.rs2);
  const uint32_t addr = rs1 + static_cast<uint32_t>(op.d.imm);
  mem.vaddr = addr;

  // MRAM data segment accesses (mld/mst): `addr` is a byte offset.
  if (op.d.kind == InstrKind::kMld || op.d.kind == InstrKind::kMst) {
    if ((addr & 3) != 0) {
      TakeException(mem.is_store ? ExcCause::kMisalignedStore : ExcCause::kMisalignedLoad,
                    op.pc, addr, op.d.raw, op.pc, op.metal);
      return false;
    }
    if (addr + 4 > kMramDataSize) {
      TakeException(ExcCause::kMramOutOfBounds, op.pc, addr, op.d.raw, op.pc, op.metal);
      return false;
    }
    if (config_.mroutine_storage == MroutineStorage::kMram) {
      mem.target = MemOp::Target::kMramData;
      mem.paddr = addr;
      mem.wait = config_.mram_latency;
    } else {
      // DRAM-resident handler data area (trap / PALcode configurations).
      mem.target = MemOp::Target::kDram;
      mem.paddr = config_.dram_handler_data_base + addr;
      mem.wait = config_.mroutine_storage == MroutineStorage::kDramUncached
                     ? config_.dram_latency
                     : dcache_.Access(mem.paddr);
    }
    ex_mem_ = mem;
    if (!mem.is_store) {
      ex_load_this_cycle_ = true;
      ex_load_rd_ = mem.rd;
    }
    return true;
  }

  // Alignment by access size.
  uint32_t size = 4;
  switch (op.d.kind) {
    case InstrKind::kLb:
    case InstrKind::kLbu:
    case InstrKind::kSb:
      size = 1;
      break;
    case InstrKind::kLh:
    case InstrKind::kLhu:
    case InstrKind::kSh:
      size = 2;
      break;
    default:
      size = 4;
      break;
  }
  if ((addr & (size - 1)) != 0) {
    TakeException(mem.is_store ? ExcCause::kMisalignedStore : ExcCause::kMisalignedLoad, op.pc,
                  addr, op.d.raw, op.pc, op.metal);
    return false;
  }

  // Translation: normal-mode accesses only. Metal mode runs with bare
  // physical addressing (paper §2.3, Access to Physical Memory); plw/psw are
  // physical by definition.
  uint32_t paddr = addr;
  const bool physical = op.metal || op.d.kind == InstrKind::kPlw ||
                        op.d.kind == InstrKind::kPsw || !metal_.paging_enabled();
  if (!physical) {
    const TranslateResult tr =
        mmu_.Translate(addr, mem.is_store ? AccessType::kStore : AccessType::kLoad,
                       metal_.asid(), metal_.keyperm());
    if (!tr.ok) {
      TakeException(tr.fault, op.pc, addr, op.d.raw, op.pc, op.metal);
      return false;
    }
    paddr = tr.paddr;
  }
  mem.paddr = paddr;
  if (paddr >= kMmioBase) {
    if (size != 4) {
      TakeException(ExcCause::kBusError, op.pc, addr, op.d.raw, op.pc, op.metal);
      return false;
    }
    mem.target = MemOp::Target::kMmio;
  } else {
    mem.target = MemOp::Target::kDram;
  }
  mem.wait = DataAccessLatency(paddr, op.metal);
  ex_mem_ = mem;
  if (!mem.is_store) {
    ex_load_this_cycle_ = true;
    ex_load_rd_ = mem.rd;
  }
  return true;
}

void Core::StageEx() {
  if (!id_ex_.valid || ex_mem_.valid) {
    return;  // nothing to do, or MEM occupied (structural stall)
  }
  Op op = id_ex_;
  id_ex_.valid = false;

  // Commit the Metal mode transition chain attached in the decode stage.
  // The committed mode after the chain is the mode this (final replacement)
  // instruction decodes in; m31 carries the link of the last menter. Exits
  // apply any pending intercepted-rd writeback (mopw).
  if (op.has_transition()) {
    --inflight_mode_ops_;
    stats_.menters += op.enters;
    stats_.mexits += op.exits;
    if (op.exits != 0) {
      // A committed mexit ends machine-check handling (recovery succeeded).
      in_machine_check_ = false;
    }
    for (uint8_t i = 0; i < op.chain_len; ++i) {
      if (op.chain[i].is_enter) {
        last_metal_entry_ = op.chain[i].entry;
      }
    }
    if (tracer_.enabled()) {
      // Replay the folded transition chain in committed order. Enter and exit
      // land on the same cycle, which is exactly the zero-bubble contract.
      for (uint8_t i = 0; i < op.chain_len; ++i) {
        const ChainStep& step = op.chain[i];
        if (step.is_enter) {
          tracer_.Emit(TraceEventKind::kMenter, step.pc, step.entry, step.target);
        } else {
          tracer_.Emit(TraceEventKind::kMexit, step.pc, step.target,
                       Mram::InCodeRange(step.target) ? 1u : 0u, /*metal=*/true);
        }
      }
      if (op.enters + op.exits >= 2) {
        tracer_.Emit(TraceEventKind::kChainFold, op.pc, op.enters, op.exits, op.metal);
      }
    }
    for (int i = 0; i < op.exits; ++i) {
      uint8_t rd = 0;
      uint32_t value = 0;
      if (metal_.TakePendingWriteback(&rd, &value)) {
        WriteReg(rd, value);
      }
    }
    if (op.enters != 0) {
      metal_.WriteMreg(kMetalLinkRegister, op.link);
      metal_.SetTrapState(0, op.pc, 0, op.d.raw);
    }
    arch_metal_ = op.metal;
  }

  // Faults detected at fetch time are delivered here, in program order.
  if (op.fetch_fault != ExcCause::kNone) {
    if (op.fetch_fault == ExcCause::kMachineCheck) {
      // MRAM fetch parity mismatch (AccessFetch): deliverable from Metal mode.
      RaiseMachineCheck(McheckKind::kMramCodeParity, op.fetch_fault_addr, op.pc);
    } else {
      TakeException(op.fetch_fault, op.pc, op.fetch_fault_addr, 0, op.pc, op.metal);
    }
    return;
  }

  // Instruction interception (paper §2.3): latch operands and vector into the
  // configured mroutine. m31 = pc + 4 (skip-and-emulate semantics; the
  // handler can rewrite m31 with MEPC to retry instead).
  if (op.intercepted) {
    OperandLatch latch;
    latch.rs1_value = ReadReg(op.d.rs1);
    latch.rs2_value = ReadReg(op.d.rs2);
    latch.imm = op.d.imm;
    latch.rd_index = op.d.rd;
    latch.rs1_index = op.d.rs1;
    latch.rs2_index = op.d.rs2;
    latch.raw = op.d.raw;
    metal_.LatchOperands(latch);
    ++stats_.intercepts;
    TakeTrapToEntry(op.intercept_entry, static_cast<uint32_t>(ExcCause::kIntercept), op.pc, 0,
                    op.d.raw, op.pc + 4, op.metal);
    return;
  }

  const InstrInfo& info = op.d.info();
  if (info.kind == InstrKind::kIllegal) {
    TakeException(ExcCause::kIllegalInstruction, op.pc, 0, op.d.raw, op.pc + 4, op.metal);
    return;
  }
  if (info.metal_only && !op.metal) {
    TakeException(ExcCause::kPrivilegeViolation, op.pc, 0, op.d.raw, op.pc + 4, op.metal);
    return;
  }
  if (op.d.kind == InstrKind::kMenter && op.metal) {
    // Nested menter is not architected (paper §3.5 discusses layering as
    // future work; src/ext/nested.cc builds it in software).
    TakeException(ExcCause::kPrivilegeViolation, op.pc, 0, op.d.raw, op.pc + 4, op.metal);
    return;
  }

  if (info.is_load || info.is_store) {
    StartMemOp(op);  // retires at MEM completion
    return;
  }
  ExecuteAluOp(op);
}

void Core::ExecuteAluOp(Op& op) {
  using K = InstrKind;
  const uint32_t pc = op.pc;
  const uint32_t a = ReadReg(op.d.rs1);
  const uint32_t b = ReadReg(op.d.rs2);
  const uint32_t imm = static_cast<uint32_t>(op.d.imm);
  const int32_t sa = static_cast<int32_t>(a);
  const int32_t sb = static_cast<int32_t>(b);
  bool retire = true;

  auto branch_to = [&](uint32_t target) {
    ++stats_.control_flushes;
    RedirectFetch(target);
  };

  switch (op.d.kind) {
    case K::kLui:
      WriteReg(op.d.rd, imm << 12);
      break;
    case K::kAuipc:
      WriteReg(op.d.rd, pc + (imm << 12));
      break;
    case K::kJal:
      WriteReg(op.d.rd, pc + 4);
      branch_to(pc + imm);
      break;
    case K::kJalr: {
      const uint32_t target = (a + imm) & ~1u;
      WriteReg(op.d.rd, pc + 4);
      branch_to(target);
      break;
    }
    case K::kBeq:
      if (a == b) branch_to(pc + imm);
      break;
    case K::kBne:
      if (a != b) branch_to(pc + imm);
      break;
    case K::kBlt:
      if (sa < sb) branch_to(pc + imm);
      break;
    case K::kBge:
      if (sa >= sb) branch_to(pc + imm);
      break;
    case K::kBltu:
      if (a < b) branch_to(pc + imm);
      break;
    case K::kBgeu:
      if (a >= b) branch_to(pc + imm);
      break;
    case K::kAddi:
      WriteReg(op.d.rd, a + imm);
      break;
    case K::kSlti:
      WriteReg(op.d.rd, sa < static_cast<int32_t>(imm) ? 1 : 0);
      break;
    case K::kSltiu:
      WriteReg(op.d.rd, a < imm ? 1 : 0);
      break;
    case K::kXori:
      WriteReg(op.d.rd, a ^ imm);
      break;
    case K::kOri:
      WriteReg(op.d.rd, a | imm);
      break;
    case K::kAndi:
      WriteReg(op.d.rd, a & imm);
      break;
    case K::kSlli:
      WriteReg(op.d.rd, a << (imm & 31));
      break;
    case K::kSrli:
      WriteReg(op.d.rd, a >> (imm & 31));
      break;
    case K::kSrai:
      WriteReg(op.d.rd, static_cast<uint32_t>(sa >> (imm & 31)));
      break;
    case K::kAdd:
      WriteReg(op.d.rd, a + b);
      break;
    case K::kSub:
      WriteReg(op.d.rd, a - b);
      break;
    case K::kSll:
      WriteReg(op.d.rd, a << (b & 31));
      break;
    case K::kSlt:
      WriteReg(op.d.rd, sa < sb ? 1 : 0);
      break;
    case K::kSltu:
      WriteReg(op.d.rd, a < b ? 1 : 0);
      break;
    case K::kXor:
      WriteReg(op.d.rd, a ^ b);
      break;
    case K::kSrl:
      WriteReg(op.d.rd, a >> (b & 31));
      break;
    case K::kSra:
      WriteReg(op.d.rd, static_cast<uint32_t>(sa >> (b & 31)));
      break;
    case K::kOr:
      WriteReg(op.d.rd, a | b);
      break;
    case K::kAnd:
      WriteReg(op.d.rd, a & b);
      break;
    case K::kFence:
      break;  // no-op: the model is sequentially consistent
    case K::kMul:
      WriteReg(op.d.rd, a * b);
      break;
    case K::kMulh:
      WriteReg(op.d.rd, static_cast<uint32_t>(
                            (static_cast<int64_t>(sa) * static_cast<int64_t>(sb)) >> 32));
      break;
    case K::kMulhsu:
      WriteReg(op.d.rd, static_cast<uint32_t>(
                            (static_cast<int64_t>(sa) * static_cast<uint64_t>(b)) >> 32));
      break;
    case K::kMulhu:
      WriteReg(op.d.rd, static_cast<uint32_t>(
                            (static_cast<uint64_t>(a) * static_cast<uint64_t>(b)) >> 32));
      break;
    case K::kDiv:
      WriteReg(op.d.rd, b == 0 ? 0xFFFFFFFFu
                        : (sa == INT32_MIN && sb == -1)
                            ? static_cast<uint32_t>(INT32_MIN)
                            : static_cast<uint32_t>(sa / sb));
      break;
    case K::kDivu:
      WriteReg(op.d.rd, b == 0 ? 0xFFFFFFFFu : a / b);
      break;
    case K::kRem:
      WriteReg(op.d.rd, b == 0 ? a
                        : (sa == INT32_MIN && sb == -1) ? 0
                                                        : static_cast<uint32_t>(sa % sb));
      break;
    case K::kRemu:
      WriteReg(op.d.rd, b == 0 ? a : a % b);
      break;
    case K::kEcall:
      TakeException(ExcCause::kEcall, pc, 0, op.d.raw, pc + 4, op.metal);
      retire = false;
      break;
    case K::kEbreak:
      TakeException(ExcCause::kBreakpoint, pc, 0, op.d.raw, pc + 4, op.metal);
      retire = false;
      break;
    case K::kHalt:
      halted_ = true;
      exit_code_ = a;
      break;
    case K::kMenter: {
      // Slow path: fast_transition disabled, DRAM-resident mroutines, or an
      // unconfigured entry (which faults).
      const uint32_t handler = metal_.EntryAddress(static_cast<uint32_t>(op.d.imm) & 63);
      if (handler == 0) {
        TakeException(ExcCause::kIllegalInstruction, pc, 0, op.d.raw, pc + 4, op.metal);
        retire = false;
        break;
      }
      tracer_.Emit(TraceEventKind::kMenter, pc, static_cast<uint32_t>(op.d.imm) & 63,
                   handler);
      metal_.SetTrapState(0, pc, 0, op.d.raw);
      metal_.WriteMreg(kMetalLinkRegister, pc + 4);
      arch_metal_ = true;
      frontend_metal_ = true;
      last_metal_entry_ = static_cast<uint8_t>(op.d.imm & 63);
      ++stats_.menters;
      ++stats_.control_flushes;
      RedirectFetch(handler);
      break;
    }
    case K::kMexit: {
      const uint32_t resume = metal_.ReadMreg(kMetalLinkRegister);
      // A machine-check recovery mroutine may point m31 at MEPC to retry the
      // aborted mroutine: an MRAM-resident resume address keeps Metal
      // privileges, and the hardware restores m31 from MCHECKM31 so the
      // retried mroutine's own mexit still returns to the interrupted
      // program (docs/robustness.md).
      const bool resume_metal = Mram::InCodeRange(resume);
      // arg1 bit 0: Metal mode retained across the exit; bit 1: this exit
      // ends a machine-check recovery with a retained-mode resume — the
      // scrub-and-retry path, which re-enters the aborted mroutine without a
      // fresh delivery event (span tracing keys the retry span off this).
      const uint32_t exit_flags = (resume_metal ? 1u : 0u) |
                                  ((in_machine_check_ && resume_metal) ? 2u : 0u);
      tracer_.Emit(TraceEventKind::kMexit, pc, resume, exit_flags, /*metal=*/true);
      arch_metal_ = resume_metal;
      frontend_metal_ = resume_metal;
      if (resume_metal) {
        metal_.WriteMreg(kMetalLinkRegister,
                         metal_.ReadCreg(kCrMcheckM31, cycle_, stats_.instret,
                                         intc_.pending()));
      }
      in_machine_check_ = false;
      ++stats_.mexits;
      uint8_t rd = 0;
      uint32_t value = 0;
      if (metal_.TakePendingWriteback(&rd, &value)) {
        WriteReg(rd, value);
      }
      ++stats_.control_flushes;
      RedirectFetch(resume);
      break;
    }
    case K::kRmr:
      WriteReg(op.d.rd, metal_.ReadMreg(static_cast<uint8_t>(op.d.imm & 31)));
      break;
    case K::kWmr:
      metal_.WriteMreg(static_cast<uint8_t>(op.d.imm & 31), a);
      break;
    case K::kRcr:
      WriteReg(op.d.rd, metal_.ReadCreg(static_cast<uint32_t>(op.d.imm) & 0xFF, cycle_,
                                        stats_.instret, intc_.pending()));
      break;
    case K::kWcr: {
      const uint32_t creg = static_cast<uint32_t>(op.d.imm) & 0xFF;
      if (creg == kCrMramScrub) {
        // Write-only trigger: restore parity-failing MRAM words from the
        // shadow copy (the recovery mroutine's repair step).
        mram_.Scrub();
      } else {
        metal_.WriteCreg(creg, a);
      }
      break;
    }
    case K::kTlbwr:
      mmu_.tlb().Insert(a, b, metal_.asid());
      break;
    case K::kTlbinv:
      mmu_.tlb().InvalidateVaddr(a, metal_.asid());
      break;
    case K::kTlbflush:
      if (op.d.rs1 == 0) {
        mmu_.tlb().FlushAll();
      } else {
        mmu_.tlb().FlushAsid(static_cast<uint16_t>(a));
      }
      break;
    case K::kTlbrd:
      WriteReg(op.d.rd, mmu_.tlb().Probe(a, metal_.asid()));
      break;
    case K::kMintset:
      metal_.ApplyMintset(a, b);
      break;
    case K::kMopr: {
      const OperandLatch& latch = metal_.operands();
      uint32_t value = 0;
      switch (op.d.rs2) {
        case kMoprRs1Value:
          value = latch.rs1_value;
          break;
        case kMoprRs2Value:
          value = latch.rs2_value;
          break;
        case kMoprImm:
          value = static_cast<uint32_t>(latch.imm);
          break;
        case kMoprRdIndex:
          value = latch.rd_index;
          break;
        case kMoprRaw:
          value = latch.raw;
          break;
        case kMoprRs1Index:
          value = latch.rs1_index;
          break;
        case kMoprRs2Index:
          value = latch.rs2_index;
          break;
        default:
          break;
      }
      WriteReg(op.d.rd, value);
      break;
    }
    case K::kMopw:
      metal_.SetPendingWriteback(a);
      break;
    default:
      TakeException(ExcCause::kIllegalInstruction, pc, 0, op.d.raw, pc + 4, op.metal);
      retire = false;
      break;
  }

  if (retire) {
    ++stats_.instret;
    if (op.metal) {
      ++stats_.metal_instret;
    }
    tracer_.Emit(TraceEventKind::kRetire, op.pc, op.d.raw, 0, op.metal);
    if (retire_trace_) {
      retire_trace_(RetireEvent{cycle_, op.pc, op.d.raw, op.metal});
    }
  }
}

// ---------------------------------------------------------------------------
// ID stage
// ---------------------------------------------------------------------------

bool Core::InterruptDeliverable() const {
  if (arch_metal_ || frontend_metal_ || inflight_mode_ops_ != 0) {
    return false;  // mroutines are non-interruptible
  }
  return (intc_.pending() & metal_.ienable()) != 0;
}

void Core::IdReplacementChain(Op& op) {
  if (!config_.fast_transition || config_.mroutine_storage != MroutineStorage::kMram) {
    return;
  }
  for (int guard = 0; guard < 4; ++guard) {
    if (op.d.kind == InstrKind::kMenter && !op.metal) {
      const uint32_t handler = metal_.EntryAddress(static_cast<uint32_t>(op.d.imm) & 63);
      if (!Mram::InCodeRange(handler)) {
        return;  // unconfigured entry: let EX raise the fault
      }
      // Predecoded combinational MRAM read (same contract as AccessFetch: a
      // generation hit trusts the cached word and skips the parity check; a
      // word that fails decode still reaches EX and traps identically to the
      // slow path, because the cached decode IS the decode of the fetched
      // word).
      const uint64_t gen = mram_.generation();
      Decoded d;
      if (const Decoded* hit = predecode_.Find(handler, gen)) {
        mram_.NoteCachedFetch(handler);
        d = *hit;
      } else {
        const auto word = mram_.FetchWord(handler);
        if (!word) {
          return;
        }
        if (mram_.CodeParityError(handler)) {
          // Corrupted first instruction: fall back to the EX slow path, whose
          // redirected fetch re-detects the mismatch and machine-checks.
          return;
        }
        if (const Decoded* verified = predecode_.Verify(handler, gen, *word)) {
          d = *verified;
        } else {
          d = DecodeInstr(*word);
          predecode_.Insert(handler, gen, *word, d);
        }
      }
      // Replace menter with the first mroutine instruction (paper §2.2).
      if (!op.has_transition()) {
        ++inflight_mode_ops_;
      }
      if (op.chain_len < op.chain.size()) {
        op.chain[op.chain_len++] =
            ChainStep{true, static_cast<uint8_t>(op.d.imm & 63), op.pc, handler};
      }
      ++op.enters;
      op.link = op.pc + 4;
      op.pc = handler;
      op.metal = true;
      op.d = d;
      op.intercepted = false;
      frontend_metal_ = true;
      ++stats_.fast_replacements;
      // Steer fetch to the second mroutine instruction, without counting a
      // control flush (this is the zero-bubble path).
      ResetFetch(handler + 4);
      continue;
    }
    if (op.d.kind == InstrKind::kMexit && op.metal) {
      // Within a chain, the effective m31 is the link of the pending menter.
      const uint32_t resume =
          op.enters != 0 ? op.link : metal_.ReadMreg(kMetalLinkRegister);
      // The replacement needs the resume instruction immediately; that only
      // works when it is resident (I-cache hit on a translated address).
      // Otherwise fall back to the EX slow path (plain redirect) and let the
      // normal fetch machinery (and its faults) take over.
      uint32_t paddr = resume;
      if ((resume & 3) != 0 || Mram::InCodeRange(resume)) {
        return;
      }
      if (metal_.paging_enabled()) {
        const TranslateResult tr =
            mmu_.Translate(resume, AccessType::kFetch, metal_.asid(), metal_.keyperm());
        if (!tr.ok) {
          return;
        }
        paddr = tr.paddr;
      }
      if (paddr >= kMmioBase || !icache_.Probe(paddr)) {
        return;
      }
      const uint64_t gen = bus_.dram().write_generation();
      Decoded d;
      if (const Decoded* hit = predecode_.Find(paddr, gen)) {
        d = *hit;
      } else {
        const auto word = bus_.dram().Read32(paddr);
        if (!word) {
          return;
        }
        if (const Decoded* verified = predecode_.Verify(paddr, gen, *word)) {
          d = *verified;
        } else {
          d = DecodeInstr(*word);
          predecode_.Insert(paddr, gen, *word, d);
        }
      }
      icache_.Access(paddr);  // count the hit
      if (!op.has_transition()) {
        ++inflight_mode_ops_;
      }
      if (op.chain_len < op.chain.size()) {
        op.chain[op.chain_len++] = ChainStep{false, 0, op.pc, resume};
      }
      ++op.exits;
      op.pc = resume;
      op.metal = false;
      op.d = d;
      frontend_metal_ = false;
      ++stats_.fast_replacements;
      ResetFetch(resume + 4);
      // The resumed instruction executes in normal mode: interception applies.
      if (metal_.AnyInterceptEnabled()) {
        if (const InterceptSlot* slot = metal_.MatchIntercept(op.d.raw)) {
          op.intercepted = true;
          op.intercept_entry = slot->entry;
        }
      }
      continue;
    }
    return;
  }
}

void Core::StageId() {
  if (redirect_this_cycle_ || !if_id_.valid || id_ex_.valid) {
    return;
  }
  Op op;
  op.valid = true;
  op.pc = if_id_.pc;
  op.metal = if_id_.metal;
  op.fetch_fault = if_id_.fault;
  op.fetch_fault_addr = if_id_.fault_addr;

  if (op.fetch_fault == ExcCause::kNone) {
    op.d = if_id_.d;  // predecoded at fetch (AccessFetch)

    // Load-use hazard: the load is in EX this cycle; stall one cycle.
    if (ex_load_this_cycle_ && UsesReg(op.d, ex_load_rd_)) {
      ++stats_.load_use_stalls;
      tracer_.Emit(TraceEventKind::kStall, op.pc, /*arg0=*/0, 0, op.metal);
      return;  // keep if_id_
    }

    // Interrupt delivery at an instruction boundary (normal mode only).
    if (InterruptDeliverable()) {
      const uint32_t line = LowestSetBit(intc_.pending() & metal_.ienable());
      ++stats_.interrupts;
      TakeTrapToEntry(metal_.IrqEntry(), InterruptCause(line), op.pc, 0, 0, op.pc,
                      /*faulting_op_is_metal=*/false);
      return;  // frontend flushed; the interrupted instruction re-fetches
    }

    // Instruction interception (normal mode only).
    if (!op.metal && metal_.AnyInterceptEnabled()) {
      if (const InterceptSlot* slot = metal_.MatchIntercept(op.d.raw)) {
        op.intercepted = true;
        op.intercept_entry = slot->entry;
      }
    }

    IdReplacementChain(op);
  }

  if_id_.valid = false;
  id_ex_ = op;
  id_ex_.valid = true;
}

// ---------------------------------------------------------------------------
// IF stage
// ---------------------------------------------------------------------------

Core::FetchResult Core::AccessFetch(uint32_t pc, bool metal_frontend, bool timing) {
  FetchResult r;
  if ((pc & 3) != 0) {
    r.fault = ExcCause::kMisalignedFetch;
    r.fault_addr = pc;
    return r;
  }
  if (Mram::InCodeRange(pc)) {
    if (!metal_frontend) {
      r.fault = ExcCause::kPrivilegeViolation;
      r.fault_addr = pc;
      return r;
    }
    // Predecoded MRAM fetch. A generation hit means no MRAM write, scrub or
    // injected corruption since the fill, so the cached word is the backing
    // word and the parity re-check (which passed at fill time) is skipped —
    // parity state cannot change without the generation changing.
    const uint64_t gen = mram_.generation();
    if (const Decoded* hit = predecode_.Find(pc, gen)) {
      mram_.NoteCachedFetch(pc);  // count + trace exactly like FetchWord
      r.ok = true;
      r.raw = hit->raw;
      r.d = *hit;
      r.latency = config_.mram_latency;
      return r;
    }
    const auto word = mram_.FetchWord(pc);
    if (!word) {
      r.fault = ExcCause::kBusError;
      r.fault_addr = pc;
      return r;
    }
    if (mram_.CodeParityError(pc)) {
      // The word is untrustworthy; deliver a machine check instead of
      // decoding it (the EX stage maps this cause to kMramCodeParity). Not
      // cached: a parity-failing word must keep failing on every fetch.
      r.fault = ExcCause::kMachineCheck;
      r.fault_addr = pc;
      return r;
    }
    r.ok = true;
    r.raw = *word;
    if (const Decoded* verified = predecode_.Verify(pc, gen, *word)) {
      r.d = *verified;
    } else {
      r.d = DecodeInstr(*word);
      predecode_.Insert(pc, gen, *word, r.d);
    }
    r.latency = config_.mram_latency;
    return r;
  }
  uint32_t paddr = pc;
  if (!metal_frontend && metal_.paging_enabled()) {
    const TranslateResult tr =
        mmu_.Translate(pc, AccessType::kFetch, metal_.asid(), metal_.keyperm());
    if (!tr.ok) {
      r.fault = tr.fault;
      r.fault_addr = pc;
      return r;
    }
    paddr = tr.paddr;
  }
  if (paddr >= kMmioBase) {
    r.fault = ExcCause::kBusError;
    r.fault_addr = pc;
    return r;
  }
  // Predecoded DRAM fetch, keyed on the physical word address (virtual
  // aliases of one physical line share the entry) and the DRAM write
  // generation (every store path — pipeline, loader, host helpers — funnels
  // through PhysicalMemory and bumps it, so self-modifying code misses).
  const uint64_t gen = bus_.dram().write_generation();
  if (const Decoded* hit = predecode_.Find(paddr, gen)) {
    r.ok = true;
    r.raw = hit->raw;
    r.d = *hit;
  } else {
    const auto word = bus_.dram().Read32(paddr);
    if (!word) {
      r.fault = ExcCause::kBusError;
      r.fault_addr = pc;
      return r;
    }
    r.ok = true;
    r.raw = *word;
    if (const Decoded* verified = predecode_.Verify(paddr, gen, *word)) {
      r.d = *verified;
    } else {
      r.d = DecodeInstr(*word);
      predecode_.Insert(paddr, gen, *word, r.d);
    }
  }
  if (metal_frontend && config_.mroutine_storage == MroutineStorage::kDramUncached) {
    // PALcode-style handler: fetched uncached from main memory.
    r.latency = config_.dram_latency;
  } else if (timing) {
    r.latency = icache_.Access(paddr);
  } else {
    r.latency = config_.cache_hit_latency;
  }
  return r;
}

void Core::StageIf() {
  if (redirect_this_cycle_) {
    return;  // fetch restarts at the redirect target next cycle
  }
  // Deliver a previously completed fetch.
  if (fetch_buffer_.valid) {
    if (if_id_.valid) {
      return;  // decode is stalled; hold
    }
    if_id_ = fetch_buffer_;
    fetch_buffer_.valid = false;
  }
  // Start a new fetch if the unit is idle and the skid buffer is free.
  if (!fetch_inflight_ && !fetch_buffer_.valid) {
    const FetchResult r = AccessFetch(fetch_pc_, frontend_metal_, /*timing=*/true);
    fetch_inflight_ = true;
    fetch_wait_ = r.ok ? r.latency : 1;
    fetch_buffer_.pc = fetch_pc_;
    fetch_buffer_.raw = r.raw;
    fetch_buffer_.d = r.d;
    fetch_buffer_.metal = frontend_metal_;
    fetch_buffer_.fault = r.fault;
    fetch_buffer_.fault_addr = r.fault_addr;
    fetch_buffer_.valid = false;  // becomes valid when the wait elapses
  }
  // Progress the in-flight fetch.
  if (fetch_inflight_) {
    if (fetch_wait_ > 0) {
      --fetch_wait_;
    }
    if (fetch_wait_ == 0) {
      fetch_inflight_ = false;
      fetch_buffer_.valid = true;
      fetch_pc_ += 4;
      // Same-cycle delivery when the decode slot is free (1-cycle fetch).
      if (!if_id_.valid) {
        if_id_ = fetch_buffer_;
        fetch_buffer_.valid = false;
      }
    }
  }
}

// --- checkpoint/restore ------------------------------------------------------
//
// The pipeline latches are serialized field by field; Decoded is rebuilt from
// the raw instruction word on restore (DecodeInstr is pure), so the format
// does not depend on the decoder's in-memory representation.

void Core::SaveState(SnapWriter& w, bool include_dram) const {
  for (uint32_t reg : regs_) {
    w.U32(reg);
  }
  w.U64(cycle_);

  // Fetch unit + IF/ID latch.
  w.U32(fetch_pc_);
  w.Bool(frontend_metal_);
  w.Bool(fetch_inflight_);
  w.U32(fetch_wait_);
  for (const FetchSlot* slot : {&fetch_buffer_, &if_id_}) {
    w.Bool(slot->valid);
    w.U32(slot->pc);
    w.U32(slot->raw);
    w.Bool(slot->metal);
    w.U32(static_cast<uint32_t>(slot->fault));
    w.U32(slot->fault_addr);
  }

  // ID/EX latch.
  w.Bool(id_ex_.valid);
  w.U32(id_ex_.pc);
  w.U32(id_ex_.d.raw);
  w.Bool(id_ex_.metal);
  w.U8(id_ex_.enters);
  w.U8(id_ex_.exits);
  w.U32(id_ex_.link);
  w.U8(id_ex_.chain_len);
  for (const ChainStep& step : id_ex_.chain) {
    w.Bool(step.is_enter);
    w.U8(step.entry);
    w.U32(step.pc);
    w.U32(step.target);
  }
  w.Bool(id_ex_.intercepted);
  w.U8(id_ex_.intercept_entry);
  w.U32(static_cast<uint32_t>(id_ex_.fetch_fault));
  w.U32(id_ex_.fetch_fault_addr);

  // EX/MEM latch.
  w.Bool(ex_mem_.valid);
  w.U32(ex_mem_.pc);
  w.U32(static_cast<uint32_t>(ex_mem_.kind));
  w.Bool(ex_mem_.metal);
  w.Bool(ex_mem_.is_store);
  w.U32(ex_mem_.vaddr);
  w.U32(ex_mem_.paddr);
  w.U32(ex_mem_.store_value);
  w.U32(ex_mem_.raw);
  w.U8(ex_mem_.rd);
  w.U32(ex_mem_.wait);
  w.U8(static_cast<uint8_t>(ex_mem_.target));

  // Mode / machine-check / hazard bookkeeping.
  w.Bool(arch_metal_);
  w.U32(static_cast<uint32_t>(inflight_mode_ops_));
  w.Bool(in_machine_check_);
  w.U64(metal_resident_cycles_);
  w.U8(last_metal_entry_);
  w.Bool(bus_fault_armed_);
  w.U32(bus_fault_and_);
  w.U32(bus_fault_xor_);
  w.Bool(ex_load_this_cycle_);
  w.U8(ex_load_rd_);
  w.Bool(redirect_this_cycle_);

  // Run outcome.
  w.Bool(halted_);
  w.U32(exit_code_);
  w.Bool(has_fatal_);
  w.U32(static_cast<uint32_t>(fatal_.code()));
  w.Str(fatal_.message());

  // Statistics.
  w.U64(stats_.cycles);
  w.U64(stats_.instret);
  w.U64(stats_.metal_instret);
  w.U64(stats_.metal_cycles);
  w.U64(stats_.menters);
  w.U64(stats_.mexits);
  w.U64(stats_.fast_replacements);
  w.U64(stats_.exceptions);
  w.U64(stats_.interrupts);
  w.U64(stats_.intercepts);
  w.U64(stats_.control_flushes);
  w.U64(stats_.load_use_stalls);
  w.U64(stats_.machine_checks);
  w.U64(stats_.watchdog_fires);

  // Predecode cache: contents AND counters, so a restored run's stats-json
  // stays byte-identical to the uninterrupted run (snapshot version 2).
  predecode_.SaveState(w);

  // Components.
  metal_.SaveState(w);
  mram_.SaveState(w);
  mmu_.tlb().SaveState(w);
  icache_.SaveState(w);
  dcache_.SaveState(w);
  intc_.SaveState(w);
  timer_.SaveState(w);
  nic_.SaveState(w);
  console_.SaveState(w);

  w.Bool(include_dram);
  if (include_dram) {
    bus_.dram().SaveState(w);
  }
}

Status Core::RestoreState(SnapReader& r) {
  // Restore replaces DRAM wholesale: every cached trace's raw words are
  // suspect. Trace state is not part of this stream (it is architecturally
  // invisible, like the stepping mode); msim restores it from the optional
  // "superblocks" snapshot section afterwards.
  superblocks_.InvalidateAll();
  for (uint32_t& reg : regs_) {
    reg = r.U32();
  }
  cycle_ = r.U64();

  fetch_pc_ = r.U32();
  frontend_metal_ = r.Bool();
  fetch_inflight_ = r.Bool();
  fetch_wait_ = r.U32();
  for (FetchSlot* slot : {&fetch_buffer_, &if_id_}) {
    slot->valid = r.Bool();
    slot->pc = r.U32();
    slot->raw = r.U32();
    slot->metal = r.Bool();
    slot->fault = static_cast<ExcCause>(r.U32());
    slot->fault_addr = r.U32();
    // Rebuilt, not serialized: DecodeInstr is pure, and `d` is only consulted
    // for faultless slots, whose raw word is the real fetched word.
    slot->d = DecodeInstr(slot->raw);
  }

  id_ex_.valid = r.Bool();
  id_ex_.pc = r.U32();
  id_ex_.d = DecodeInstr(r.U32());
  id_ex_.metal = r.Bool();
  id_ex_.enters = r.U8();
  id_ex_.exits = r.U8();
  id_ex_.link = r.U32();
  id_ex_.chain_len = r.U8();
  for (ChainStep& step : id_ex_.chain) {
    step.is_enter = r.Bool();
    step.entry = r.U8();
    step.pc = r.U32();
    step.target = r.U32();
  }
  id_ex_.intercepted = r.Bool();
  id_ex_.intercept_entry = r.U8();
  id_ex_.fetch_fault = static_cast<ExcCause>(r.U32());
  id_ex_.fetch_fault_addr = r.U32();

  ex_mem_.valid = r.Bool();
  ex_mem_.pc = r.U32();
  ex_mem_.kind = static_cast<InstrKind>(r.U32());
  ex_mem_.metal = r.Bool();
  ex_mem_.is_store = r.Bool();
  ex_mem_.vaddr = r.U32();
  ex_mem_.paddr = r.U32();
  ex_mem_.store_value = r.U32();
  ex_mem_.raw = r.U32();
  ex_mem_.rd = r.U8();
  ex_mem_.wait = r.U32();
  ex_mem_.target = static_cast<MemOp::Target>(r.U8());

  arch_metal_ = r.Bool();
  inflight_mode_ops_ = static_cast<int>(r.U32());
  in_machine_check_ = r.Bool();
  metal_resident_cycles_ = r.U64();
  last_metal_entry_ = r.U8();
  bus_fault_armed_ = r.Bool();
  bus_fault_and_ = r.U32();
  bus_fault_xor_ = r.U32();
  ex_load_this_cycle_ = r.Bool();
  ex_load_rd_ = r.U8();
  redirect_this_cycle_ = r.Bool();

  halted_ = r.Bool();
  exit_code_ = r.U32();
  has_fatal_ = r.Bool();
  const uint32_t fatal_code = r.U32();
  const std::string fatal_message = r.Str();
  MSIM_RETURN_IF_ERROR(r.ToStatus("core fatal status"));
  fatal_ = fatal_code == 0 ? Status::Ok()
                           : Status(static_cast<ErrorCode>(fatal_code), fatal_message);

  stats_.cycles = r.U64();
  stats_.instret = r.U64();
  stats_.metal_instret = r.U64();
  stats_.metal_cycles = r.U64();
  stats_.menters = r.U64();
  stats_.mexits = r.U64();
  stats_.fast_replacements = r.U64();
  stats_.exceptions = r.U64();
  stats_.interrupts = r.U64();
  stats_.intercepts = r.U64();
  stats_.control_flushes = r.U64();
  stats_.load_use_stalls = r.U64();
  stats_.machine_checks = r.U64();
  stats_.watchdog_fires = r.U64();
  MSIM_RETURN_IF_ERROR(r.ToStatus("core scalar state"));

  MSIM_RETURN_IF_ERROR(predecode_.RestoreState(r));
  MSIM_RETURN_IF_ERROR(metal_.RestoreState(r));
  MSIM_RETURN_IF_ERROR(mram_.RestoreState(r));
  MSIM_RETURN_IF_ERROR(mmu_.tlb().RestoreState(r));
  MSIM_RETURN_IF_ERROR(icache_.RestoreState(r));
  MSIM_RETURN_IF_ERROR(dcache_.RestoreState(r));
  MSIM_RETURN_IF_ERROR(intc_.RestoreState(r));
  MSIM_RETURN_IF_ERROR(timer_.RestoreState(r));
  MSIM_RETURN_IF_ERROR(nic_.RestoreState(r));
  MSIM_RETURN_IF_ERROR(console_.RestoreState(r));

  const bool has_dram = r.Bool();
  MSIM_RETURN_IF_ERROR(r.ToStatus("core dram flag"));
  if (has_dram) {
    MSIM_RETURN_IF_ERROR(bus_.dram().RestoreState(r));
  }
  return Status::Ok();
}

uint64_t Core::StateDigest(bool include_dram) const {
  SnapWriter w(SnapWriter::Mode::kDigestOnly);
  SaveState(w, include_dram);
  return w.digest();
}

}  // namespace msim
