// Superblock translation tier: chained decoded traces over the predecode
// cache (the next rung of the interpreter -> DBT ladder after batched
// stepping; docs/performance.md).
//
// A superblock is a straight-line run of trace-safe DRAM instructions
// starting at a pipeline refill point (a branch target or a cold entry),
// extended THROUGH not-taken conditional branches and terminated by an
// unconditional jump (jal/jalr), the first trace-unsafe or unfetchable
// word, the DRAM/MMIO segment boundary, or CoreConfig::superblock_max_len.
// Core::StepFast executes whole traces with a computed-goto inner loop over
// pre-extracted operand fields, dispatching once per instruction instead of
// re-deciding window safety, branch direction and decode per cycle; a taken
// branch whose target starts another cached trace chains directly into it.
//
// Rung 2 (this tier's second iteration) widens trace safety beyond the plain
// window in two ways:
//   * Memory-op slots. lw/lh/lhu/lb/lbu/sw/sh/sb join traces. At execution
//     time a memory slot takes the fast path only when the access is
//     TLB-resident with the required permission (paging on), a dcache hit,
//     and DRAM-targeted (never MRAM or device MMIO); anything else exits the
//     trace uncommitted and replays through the per-cycle machinery. The
//     executor models the MEM stage as a one-cycle pending op completed at
//     the top of the next committed cycle (StageMem runs before StageEx),
//     including load-use stall bubbles and the fetch skid buffer the stall
//     leaves engaged, so N trace cycles stay byte-identical to N
//     Core::StepCycle calls.
//   * Trace trees. Conditional branch slots carry taken/not-taken counters;
//     when a branch is observed strongly biased toward taken, the hot
//     successor is built as an additional SEGMENT of the same superblock
//     (SbSegment) and the branch links to it, so the taken edge replays
//     in-trace (the architectural two-cycle flush still happens — trees buy
//     immunity from trace-cache conflict eviction and skip the per-chain
//     cache lookup, not pipeline cycles). Growth is bounded by
//     CoreConfig::superblock_max_trees and happens only outside the
//     executor (slot storage may reallocate).
//
// Byte-exactness is the contract, exactly as for the predecode cache and
// batched stepping below it: N cycles through a superblock leave machine
// state byte-identical to N Core::StepCycle calls (enforced by
// `msim replay --b-no-superblocks`, the mfuzz "superblock" oracle and the
// superblock_test digest matrix). Three mechanisms carry the contract:
//   * Entry guards. Traces run only inside a StepFast window, so every
//     window-entry guard (no fault engine, not Metal, no pending interrupt,
//     device-event horizon) is already established; trace entry additionally
//     requires both pipeline latches empty (the refill state), every icache
//     line spanning the entered segment resident, and — with paging on — a
//     single consistent virtual-to-physical delta for the segment's pages.
//     The horizon stays valid across a whole trace because device state is
//     MMIO-only and memory slots are DRAM-only.
//   * Per-fetch revalidation. Each trace slot records the raw word it was
//     built from. Every simulated fetch still consults the predecode cache
//     (side-effect-free Peek before the cycle commits, the counting
//     Verify/Insert after), so predecode hit/verified/miss counters match a
//     per-cycle run exactly, and a slot whose raw word no longer matches the
//     backing store invalidates the whole trace before any cycle commits.
//   * Generation-driven invalidation. The Peek/Verify pair keys on
//     PhysicalMemory::write_generation. In-trace stores bump it mid-window:
//     the cycle that completes a pending store checks the fetched word
//     against the post-store bytes (merging the store into the backing word
//     BEFORE committing), so a store into the executing trace's own backing
//     words — self-modifying code — exits and invalidates before the cycle
//     commits, and every same-cycle fetch takes the Verify/Insert path a
//     per-cycle run would take under the bumped generation.
//
// Trace state is NOT part of Core::SaveState — like CoreConfig::fast_step,
// the tier is architecturally invisible and snapshots stay portable across
// it. msim serializes the cache and its counters as a "superblocks" snapshot
// extras section instead (tools/msim_main.cc), so a restored run reports the
// same --stats-json superblock counters as the straight run; a snapshot
// without the section simply restores to a cold cache. Tree links and bias
// counters serialize with the traces, so a restored run grows the same trees
// at the same cycles as the straight run.
#ifndef MSIM_CPU_SUPERBLOCK_H_
#define MSIM_CPU_SUPERBLOCK_H_

#include <cstdint>
#include <vector>

#include "isa/decode.h"
#include "support/result.h"
#include "trace/metrics.h"

namespace msim {

class PhysicalMemory;
class Mmu;
class SnapWriter;
class SnapReader;

// True for the instruction kinds the StepFast window admits: faultless
// 1-cycle ALU/branch work with no D-side access and no Metal state. Shared
// by the per-cycle window check in Core::StepFast and the superblock build
// walk (both must agree, or a trace could contain a cycle the window would
// have refused).
bool WindowSafeInstr(InstrKind kind);

// True for the kinds the superblock BUILD walk admits: WindowSafeInstr plus
// the DRAM loads/stores the trace executor models with a pending MEM op.
// The generic (non-trace) window loop still refuses these — only the
// executor carries the completion machinery.
bool TraceSafeInstr(InstrKind kind);

// True if the decoded instruction reads GPR `reg`. This is the load-use
// hazard predicate StageId applies per cycle; the build walk applies it
// statically to mark load slots whose successor stalls (SbSlot::stall_after).
bool InstrReadsGpr(const Decoded& d, uint8_t reg);

// Executor opcode: the computed-goto dispatch index. Operands are
// pre-extracted at build time (pc-relative constants folded, shift amounts
// pre-masked) so the inner loop reads fields, never re-decodes.
enum class SbExec : uint8_t {
  kConst = 0,  // rd <- cval (lui, auipc)
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence,      // architectural no-op
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  kJal,        // rd <- cval (pc+4); always redirects to target
  kJalr,       // rd <- cval (pc+4); redirects to (rs1 + imm) & ~1
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  // Memory-op slots (rung 2). kLb is the first: `exec >= SbExec::kLb` tests
  // "is a memory slot" in the executor and the exit materialization.
  kLb, kLbu, kLh, kLhu, kLw,
  kSb, kSh, kSw,
  kCount,
};

// Executor slot-class predicates (dense SbExec ranges; see the enum order).
inline bool SbIsMem(SbExec e) { return e >= SbExec::kLb; }
inline bool SbIsLoad(SbExec e) { return e >= SbExec::kLb && e <= SbExec::kLw; }
inline bool SbIsStore(SbExec e) { return e >= SbExec::kSb; }
inline bool SbIsCondBranch(SbExec e) { return e >= SbExec::kBeq && e <= SbExec::kBgeu; }

// Access width in bytes of a memory slot.
inline uint32_t SbMemSize(SbExec e) {
  switch (e) {
    case SbExec::kLb:
    case SbExec::kLbu:
    case SbExec::kSb:
      return 1;
    case SbExec::kLh:
    case SbExec::kLhu:
    case SbExec::kSh:
      return 2;
    default:
      return 4;
  }
}

// Branch-slot tree-link states (SbSlot::taken_seg).
inline constexpr int16_t kSbSegUnlinked = -1;  // counting; may still grow
inline constexpr int16_t kSbSegNoGrow = -2;    // growth tried/refused: stop counting

struct SbSlot {
  SbExec exec = SbExec::kFence;
  uint8_t rd = 0;    // pre-masked to 5 bits; 0 means "no writeback"
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  // Load slot whose rd the NEXT slot reads: dispatching it costs the
  // load-use stall cycle plus a bubble, computed at build time (the dynamic
  // StageId check is a pure function of two adjacent slots).
  bool stall_after = false;
  // Conditional branches: segment index inlining the taken successor, or a
  // kSbSeg* state. Never 0 (the root segment is entered only via Lookup).
  int16_t taken_seg = kSbSegUnlinked;
  uint32_t taken_n = 0;     // taken-branch bias counters; frozen once linked
  uint32_t nottaken_n = 0;
  uint32_t imm = 0;     // imm32; shift amounts pre-masked to 5 bits
  uint32_t cval = 0;    // folded constant: lui/auipc result, jal/jalr link
  uint32_t target = 0;  // pc + imm for branches and jal
  uint32_t addr = 0;    // the word's virtual address within its segment
  uint32_t raw = 0;     // raw word at build time; revalidated per fetch
  Decoded d;            // for latch-payload writeback and predecode Insert
};

// One straight-line run of a trace tree. Segment 0 is the root (the trace's
// only Lookup entry point); segments >= 1 are grown taken-branch successors
// entered exclusively through their linking branch slot's taken edge.
struct SbSegment {
  uint32_t start = 0;     // virtual address of the segment's first slot
  uint32_t base = 0;      // index of that slot in Superblock::slots
  uint32_t exec_len = 0;  // executable slots (>= kSuperblockMinLen)
  uint32_t len = 0;       // total slots including the fetch-only tail
};

struct Superblock {
  bool valid = false;
  uint32_t start = 0;     // root segment start; the only Lookup entry point
  uint32_t exec_len = 0;  // root segment executable slots (mirror of segs[0])
  // Root segment total slots including up to two trailing FETCH-ONLY slots:
  // the pipeline fetches two words past the last executable slot before a
  // terminal branch resolves (one speculative fall-through fetch per
  // unresolved stage), and recording those words lets the hot taken-branch
  // back edge of a loop execute fully in-trace. Fetch-only slots carry
  // addr/raw/d only; the executor exits before one would reach EX.
  uint32_t len = 0;
  // Flat slot storage for every segment (segs[i] spans
  // [segs[i].base, segs[i].base + segs[i].len)). Reallocates only outside
  // the executor (Build/MaybeGrow are never called while slot pointers are
  // live).
  std::vector<SbSlot> slots;
  std::vector<SbSegment> segs;
  // Deferred tree growth: a biased branch was observed at flat slot index
  // grow_slot; MaybeGrow (called at trace entry and chain points, never
  // inside a running segment) builds the successor segment.
  bool grow_pending = false;
  uint32_t grow_slot = 0;
};

struct SuperblockStats {
  uint64_t builds = 0;         // traces constructed (build walk succeeded)
  uint64_t executions = 0;     // trace entries from the generic window loop
  uint64_t chains = 0;         // taken branches that chained trace-to-trace
  uint64_t instructions = 0;   // instructions retired inside traces
  uint64_t invalidations = 0;  // traces killed (stale raw word, InvalidateAll)
  uint64_t evictions = 0;      // builds that overwrote a different live trace
  // Rung 2: memory-slot attribution (--stats-json; bench/CI regression
  // triage distinguishes "memory ops ran fast" from "memory ops threw the
  // trace out").
  uint64_t mem_fast_hits = 0;   // memory slots dispatched on the fast path
  uint64_t mem_slow_exits = 0;  // trace exits forced by a slow-path memory op
  uint64_t tree_grows = 0;        // successor segments built
  uint64_t tree_transitions = 0;  // taken branches that stayed in-trace via a segment
};

// Fetch-address resolver for the build walk and segment entry: maps a
// virtual word address to the physical address raw words live at. Identity
// when mmu is null (paging off). Pure: never counts, never traces.
struct SbAddrSpace {
  const Mmu* mmu = nullptr;
  uint16_t asid = 0;
  uint32_t keyperm = 0;
  // False on TLB miss / permission or key failure; *paddr untouched.
  bool Resolve(uint32_t vaddr, uint32_t* paddr) const;
};

// Direct-mapped trace cache, indexed by start address. Deterministic by
// construction: build-on-first-miss with overwrite eviction and
// entry-point-only growth, so cache contents are a pure function of the
// execution history (which checkpoint restore replays via the serialized
// trace list, tree links and bias counters).
class SuperblockCache {
 public:
  // Geometry is fixed (kSuperblockEntries); `enabled` off constructs an
  // empty cache that Lookup/Build treat as permanently cold.
  SuperblockCache(bool enabled, uint32_t max_len);

  bool enabled() const { return !traces_.empty(); }
  uint32_t max_len() const { return max_len_; }

  // Trace lookup for `pc`. No counters are touched: executions/chains are
  // counted by the executor, which may still reject the trace (icache lines
  // not resident).
  Superblock* Lookup(uint32_t pc) {
    if (traces_.empty()) {
      return nullptr;
    }
    Superblock& sb = traces_[Index(pc)];
    return (sb.valid && sb.start == pc) ? &sb : nullptr;
  }

  // Builds, caches and returns the trace starting at `start`, or nullptr if
  // no trace of at least kSuperblockMinLen trace-safe instructions exists
  // there. The walk is side-effect-free on machine state: raw words come
  // from PhysicalMemory::Read32 through `as` (current translation; a single
  // consistent delta per segment) and are revalidated per fetch at execution
  // time, so no generation is recorded. A failed walk stops at the first
  // offending word — re-probing an unsafe target costs O(1) decodes.
  Superblock* Build(uint32_t start, const PhysicalMemory& dram, const SbAddrSpace& as);

  // Applies a pending tree growth: builds the successor segment at the
  // biased branch's target and links the branch to it. Bounded by
  // `max_trees` grown segments per trace; a refused or failed growth marks
  // the branch kSbSegNoGrow so it is never retried. Reallocates sb.slots —
  // must not be called while executor slot pointers are live.
  void MaybeGrow(Superblock& sb, const PhysicalMemory& dram, const SbAddrSpace& as,
                 uint32_t max_trees);

  // Kills one stale trace (raw word changed under a bumped generation).
  void Invalidate(Superblock& sb) {
    sb.valid = false;
    ++stats_.invalidations;
  }

  // Kills every trace (program load, snapshot restore). Counts one
  // invalidation only when at least one live trace died: unlike the
  // predecode cache this keeps the counter identical across stepping modes
  // (a run that never built a trace reports 0, whichever mode ran).
  void InvalidateAll();

  // Executor counter ports (Core::StepFast).
  void CountExecution() { ++stats_.executions; }
  void CountChain() { ++stats_.chains; }
  void CountTreeTransition() { ++stats_.tree_transitions; }
  void CountMemFastHit() { ++stats_.mem_fast_hits; }
  void CountMemSlowExit() { ++stats_.mem_slow_exits; }
  void CreditInstructions(uint64_t n) { stats_.instructions += n; }

  const SuperblockStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SuperblockStats{}; }
  void RegisterMetrics(MetricRegistry& registry) const;

  // Checkpoint/restore for the msim "superblocks" snapshot extras section:
  // live traces as (segment geometry, raw words, tree links, bias counters)
  // plus the stats counters. Restore rebuilds slots by re-translating the
  // SERIALIZED raw words — not current DRAM — so a trace that had gone stale
  // in the checkpointed machine restores equally stale and dies at the same
  // future fetch, keeping restored-run counters byte-identical to the
  // straight run. Traces longer than this cache's max_len restore intact
  // (max_len gates new builds only). Reads both the rung-1 (v1) and the
  // segmented rung-2 (v2) section formats; always writes v2.
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

 private:
  uint32_t Index(uint32_t addr) const { return (addr >> 2) & mask_; }

  // Translates one decoded word at `pc` into an executor slot. False when
  // the kind has no executor op (trace-unsafe or unknown).
  static bool TranslateSlot(const Decoded& d, uint32_t pc, uint32_t raw, SbSlot* out);

  // Shared straight-line walk for Build (root segment) and MaybeGrow
  // (successor segments): appends the run starting at `start` to `slots`,
  // returning the executable length (0 if shorter than kSuperblockMinLen).
  uint32_t WalkSegment(uint32_t start, const PhysicalMemory& dram, const SbAddrSpace& as,
                       std::vector<SbSlot>* slots) const;

  // Rung-1 "superblocks" section decoder (`live` is the already-consumed
  // leading trace count).
  Status RestoreV1(uint32_t live, SnapReader& r);

  std::vector<Superblock> traces_;
  uint32_t mask_ = 0;
  uint32_t max_len_ = 0;
  SuperblockStats stats_;
};

// Cache geometry: fixed so snapshot sections are portable across configs.
inline constexpr uint32_t kSuperblockEntries = 1024;
// Refilling the two pipeline latches costs two in-trace cycles before the
// first slot reaches EX, so a shorter trace could never execute anything.
inline constexpr uint32_t kSuperblockMinLen = 2;
// Restore-time sanity bound on serialized trace length (corrupt snapshots).
inline constexpr uint32_t kSuperblockMaxRestoreLen = 4096;
// Restore-time sanity bound on segments per trace.
inline constexpr uint32_t kSuperblockMaxRestoreSegs = 257;
// Bias threshold: a branch grows its taken successor once taken at least
// this often AND at least 8x more often than not taken.
inline constexpr uint32_t kSbGrowMinTaken = 16;
// Leading sentinel of the v2 "superblocks" snapshot section (no v1 section
// starts with it: v1 leads with a live-trace count <= kSuperblockEntries).
inline constexpr uint32_t kSuperblockSectionV2 = 0xFFFFFFFFu;

}  // namespace msim

#endif  // MSIM_CPU_SUPERBLOCK_H_
