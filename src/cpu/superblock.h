// Superblock translation tier: chained decoded traces over the predecode
// cache (the next rung of the interpreter -> DBT ladder after batched
// stepping; docs/performance.md).
//
// A superblock is a straight-line run of window-safe DRAM instructions
// starting at a pipeline refill point (a branch target or a cold entry),
// extended THROUGH not-taken conditional branches and terminated by an
// unconditional jump (jal/jalr), the first window-unsafe or unfetchable
// word, the DRAM/MMIO segment boundary, or CoreConfig::superblock_max_len.
// Core::StepFast executes whole traces with a computed-goto inner loop over
// pre-extracted operand fields, dispatching once per instruction instead of
// re-deciding window safety, branch direction and decode per cycle; a taken
// branch whose target starts another cached trace chains directly into it.
//
// Byte-exactness is the contract, exactly as for the predecode cache and
// batched stepping below it: N cycles through a superblock leave machine
// state byte-identical to N Core::StepCycle calls (enforced by
// `msim replay --b-no-superblocks`, the mfuzz "superblock" oracle and the
// superblock_test digest matrix). Three mechanisms carry the contract:
//   * Entry guards. Traces run only inside a StepFast window, so every
//     window-entry guard (no fault engine, not Metal, no pending interrupt,
//     device-event horizon) is already established; trace entry additionally
//     requires both pipeline latches empty (the refill state) and every
//     icache line spanning the trace resident. The horizon stays valid
//     across a whole trace because device state is MMIO-only and traces
//     admit no loads/stores: Bus::NextDeviceEventCycle returns an absolute
//     cycle that only device register writes could move.
//   * Per-fetch revalidation. Each trace slot records the raw word it was
//     built from. Every simulated fetch still consults the predecode cache
//     (side-effect-free Peek before the cycle commits, the counting
//     Verify/Insert after), so predecode hit/verified/miss counters match a
//     per-cycle run exactly, and a slot whose raw word no longer matches the
//     backing store invalidates the whole trace before any cycle commits.
//   * Generation-driven invalidation. The Peek/Verify pair keys on
//     PhysicalMemory::write_generation, so any DRAM write (self-modifying
//     store, loader, debug poke) forces the raw-word re-read above. Traces
//     never contain MRAM code (Mram::generation): MRAM code executes in
//     Metal mode, which the fast path refuses wholesale, and the build walk
//     stops at kMmioBase.
//
// Trace state is NOT part of Core::SaveState — like CoreConfig::fast_step,
// the tier is architecturally invisible and snapshots stay portable across
// it. msim serializes the cache and its counters as a "superblocks" snapshot
// extras section instead (tools/msim_main.cc), so a restored run reports the
// same --stats-json superblock counters as the straight run; a snapshot
// without the section simply restores to a cold cache.
#ifndef MSIM_CPU_SUPERBLOCK_H_
#define MSIM_CPU_SUPERBLOCK_H_

#include <cstdint>
#include <vector>

#include "isa/decode.h"
#include "support/result.h"
#include "trace/metrics.h"

namespace msim {

class PhysicalMemory;
class SnapWriter;
class SnapReader;

// True for the instruction kinds the StepFast window admits: faultless
// 1-cycle ALU/branch work with no D-side access and no Metal state. Shared
// by the per-cycle window check in Core::StepFast and the superblock build
// walk (both must agree, or a trace could contain a cycle the window would
// have refused).
bool WindowSafeInstr(InstrKind kind);

// Executor opcode: the computed-goto dispatch index. Operands are
// pre-extracted at build time (pc-relative constants folded, shift amounts
// pre-masked) so the inner loop reads fields, never re-decodes.
enum class SbExec : uint8_t {
  kConst = 0,  // rd <- cval (lui, auipc)
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence,      // architectural no-op
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  kJal,        // rd <- cval (pc+4); always redirects to target
  kJalr,       // rd <- cval (pc+4); redirects to (rs1 + imm) & ~1
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kCount,
};

struct SbSlot {
  SbExec exec = SbExec::kFence;
  uint8_t rd = 0;    // pre-masked to 5 bits; 0 means "no writeback"
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  uint32_t imm = 0;     // imm32; shift amounts pre-masked to 5 bits
  uint32_t cval = 0;    // folded constant: lui/auipc result, jal/jalr link
  uint32_t target = 0;  // pc + imm for branches and jal
  uint32_t addr = 0;    // the word's address (== trace start + 4 * index)
  uint32_t raw = 0;     // raw word at build time; revalidated per fetch
  Decoded d;            // for latch-payload writeback and predecode Insert
};

struct Superblock {
  bool valid = false;
  uint32_t start = 0;     // address of slots[0]; the only entry point
  uint32_t exec_len = 0;  // executable slots (>= kSuperblockMinLen)
  // Total slots including up to two trailing FETCH-ONLY slots: the pipeline
  // fetches two words past the last executable slot before a terminal branch
  // resolves (one speculative fall-through fetch per unresolved stage), and
  // recording those words lets the hot taken-branch back edge of a loop
  // execute fully in-trace. Fetch-only slots carry addr/raw/d only; the
  // executor exits before one would reach EX.
  uint32_t len = 0;
  std::vector<SbSlot> slots;
};

struct SuperblockStats {
  uint64_t builds = 0;         // traces constructed (build walk succeeded)
  uint64_t executions = 0;     // trace entries from the generic window loop
  uint64_t chains = 0;         // taken branches that chained trace-to-trace
  uint64_t instructions = 0;   // instructions retired inside traces
  uint64_t invalidations = 0;  // traces killed (stale raw word, InvalidateAll)
  uint64_t evictions = 0;      // builds that overwrote a different live trace
};

// Direct-mapped trace cache, indexed by start address. Deterministic by
// construction: build-on-first-miss with overwrite eviction, so cache
// contents are a pure function of the execution history (which checkpoint
// restore replays via the serialized trace list).
class SuperblockCache {
 public:
  // Geometry is fixed (kSuperblockEntries); `enabled` off constructs an
  // empty cache that Lookup/Build treat as permanently cold.
  SuperblockCache(bool enabled, uint32_t max_len);

  bool enabled() const { return !traces_.empty(); }
  uint32_t max_len() const { return max_len_; }

  // Trace lookup for `pc`. No counters are touched: executions/chains are
  // counted by the executor, which may still reject the trace (icache lines
  // not resident).
  Superblock* Lookup(uint32_t pc) {
    if (traces_.empty()) {
      return nullptr;
    }
    Superblock& sb = traces_[Index(pc)];
    return (sb.valid && sb.start == pc) ? &sb : nullptr;
  }

  // Builds, caches and returns the trace starting at `start`, or nullptr if
  // no trace of at least kSuperblockMinLen window-safe instructions exists
  // there. The walk is side-effect-free on machine state: raw words come
  // from PhysicalMemory::Read32 and are revalidated per fetch at execution
  // time, so no generation is recorded. A failed walk stops at the first
  // offending word — re-probing an unsafe target costs O(1) decodes.
  Superblock* Build(uint32_t start, const PhysicalMemory& dram);

  // Kills one stale trace (raw word changed under a bumped generation).
  void Invalidate(Superblock& sb) {
    sb.valid = false;
    ++stats_.invalidations;
  }

  // Kills every trace (program load, snapshot restore). Counts one
  // invalidation only when at least one live trace died: unlike the
  // predecode cache this keeps the counter identical across stepping modes
  // (a run that never built a trace reports 0, whichever mode ran).
  void InvalidateAll();

  // Executor counter ports (Core::StepFast).
  void CountExecution() { ++stats_.executions; }
  void CountChain() { ++stats_.chains; }
  void CreditInstructions(uint64_t n) { stats_.instructions += n; }

  const SuperblockStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SuperblockStats{}; }
  void RegisterMetrics(MetricRegistry& registry) const;

  // Checkpoint/restore for the msim "superblocks" snapshot extras section:
  // live traces as (start, raw words) plus the counters. Restore rebuilds
  // slots by re-translating the SERIALIZED raw words — not current DRAM —
  // so a trace that had gone stale in the checkpointed machine restores
  // equally stale and dies at the same future fetch, keeping restored-run
  // counters byte-identical to the straight run. Traces longer than this
  // cache's max_len restore intact (max_len gates new builds only).
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

 private:
  uint32_t Index(uint32_t addr) const { return (addr >> 2) & mask_; }

  // Translates one decoded word at `pc` into an executor slot. False when
  // the kind has no executor op (window-unsafe or unknown).
  static bool TranslateSlot(const Decoded& d, uint32_t pc, uint32_t raw, SbSlot* out);

  std::vector<Superblock> traces_;
  uint32_t mask_ = 0;
  uint32_t max_len_ = 0;
  SuperblockStats stats_;
};

// Cache geometry: fixed so snapshot sections are portable across configs.
inline constexpr uint32_t kSuperblockEntries = 1024;
// Refilling the two pipeline latches costs two in-trace cycles before the
// first slot reaches EX, so a shorter trace could never execute anything.
inline constexpr uint32_t kSuperblockMinLen = 2;
// Restore-time sanity bound on serialized trace length (corrupt snapshots).
inline constexpr uint32_t kSuperblockMaxRestoreLen = 4096;

}  // namespace msim

#endif  // MSIM_CPU_SUPERBLOCK_H_
