// Core configuration: timing parameters and Metal ablation switches.
#ifndef MSIM_CPU_CONFIG_H_
#define MSIM_CPU_CONFIG_H_

#include <cstdint>

namespace msim {

// Where mroutine code and data live. kMram is the paper's design; the DRAM
// placements are the comparison points (a conventional trap handler, and an
// Alpha-PALcode-style handler fetched uncached from main memory — the paper
// cites ~18 cycles for a no-op PALcode call).
enum class MroutineStorage {
  kMram,
  kDramCached,
  kDramUncached,
};

struct CoreConfig {
  uint32_t dram_size = 16 * 1024 * 1024;

  // Caches: direct-mapped; latencies in cycles.
  uint32_t icache_lines = 64;
  uint32_t icache_line_size = 64;
  uint32_t dcache_lines = 64;
  uint32_t dcache_line_size = 64;
  uint32_t cache_hit_latency = 1;
  uint32_t dram_latency = 20;   // cache miss / uncached access
  uint32_t mmio_latency = 5;
  uint32_t mram_latency = 1;    // collocated with the fetch unit (paper §2.2)

  uint32_t tlb_entries = 32;

  // Metal configuration.
  MroutineStorage mroutine_storage = MroutineStorage::kMram;
  // Decode-stage replacement of menter/mexit (paper §2.2). Disabled, the
  // transitions behave like jumps resolved in EX (ablation).
  bool fast_transition = true;

  // When mroutines live in DRAM, their code/data are placed here by the
  // loader (see MetalSystem). The bases are offset by half the cache index
  // range so small handlers do not systematically conflict with program
  // text in the direct-mapped caches.
  uint32_t dram_handler_code_base = 0x00E00800;
  uint32_t dram_handler_data_base = 0x00E80800;

  // Robustness machinery (docs/robustness.md).
  // MRAM parity: loader/mst writes maintain per-word parity; a fetch or mld
  // of a word whose parity mismatches (i.e. corrupted behind the write path)
  // raises a machine check instead of silently executing/returning it.
  bool mram_parity = true;
  // Metal-mode watchdog: a machine check fires when the core stays in Metal
  // mode for more than this many consecutive cycles (mroutines are
  // non-interruptible, so a looping mroutine would otherwise hang the
  // machine). 0 disables the watchdog.
  uint64_t metal_watchdog_cycles = 0;

  // Simulation-speed machinery (docs/performance.md). Neither knob is
  // architecturally visible: fast and slow stepping produce byte-identical
  // machine state, enforced by `msim replay --compare --b-no-fast-step` and
  // the mfuzz "faststep" oracle.
  //
  // Predecode cache entries (0 disables; rounded up to a power of two).
  // Entries are serialized in snapshots, so the count participates in the
  // snapshot config hash (snap/snapshot.h).
  uint32_t predecode_entries = 4096;
  // Batched hot-path stepping in Core::Run: straight-line non-Metal code is
  // stepped without per-cycle device polling or latch shuffling. Cycle-exact
  // by construction; Core::StepCycle is the per-cycle reference either way.
  bool fast_step = true;
  // Superblock translation tier on top of the fast-step window
  // (cpu/superblock.h): straight-line decoded runs are chained into trace
  // objects executed by a threaded-code inner loop, byte-exact like the
  // tiers below it (enforced by `msim replay --b-no-superblocks` and the
  // mfuzz "superblock" oracle). Like fast_step, neither knob joins the
  // snapshot config hash: trace state travels in a separate "superblocks"
  // snapshot section, and snapshots stay portable across stepping modes.
  bool superblocks = true;
  // Maximum executable instructions per superblock trace segment.
  uint32_t superblock_max_len = 64;
  // Maximum tree segments grown past strongly biased conditional branches,
  // per trace (0 disables trace-tree formation). Excluded from the snapshot
  // config hash like the other superblock knobs.
  uint32_t superblock_max_trees = 8;

  // Safety net for runaway simulations in tests.
  uint64_t default_max_cycles = 50'000'000;
};

}  // namespace msim

#endif  // MSIM_CPU_CONFIG_H_
