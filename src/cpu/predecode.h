// Predecode cache: decoded-instruction cache fronting DecodeInstr.
//
// Every fetch — DRAM program text and MRAM mroutine words alike — used to run
// the full DecodeInstr table walk, and the decode-stage menter/mexit
// replacement chain decoded the same mroutine words again inline. This cache
// memoizes (word address -> Decoded) so steady-state fetch is an array index.
//
// Coherence is generation-based rather than snoop-based. Each backing store
// keeps a monotonic write generation (PhysicalMemory::write_generation for
// DRAM, Mram::generation for MRAM — bumped by loader writes, mst, scrubs,
// fault-injection corruption and restore), and every entry records the
// generation it was filled under:
//   * tag match + generation match: the backing word cannot have changed
//     since the fill — trust the cached raw word and decode outright. For an
//     MRAM entry this also makes skipping the parity re-check sound: parity
//     state only changes when the generation does.
//   * tag match + stale generation: the caller re-reads the word from the
//     backing store (and, for MRAM, re-runs the parity check); if the raw
//     word is unchanged the decode is refreshed in place ("verified hit" —
//     self-modifying stores elsewhere in DRAM bump the generation without
//     touching this word).
//   * anything else is a miss: the caller decodes and calls Insert.
// The two address spaces never alias (MRAM code lives at 0xFFFF0000+, DRAM
// below kMmioBase), so one direct-mapped array serves both; the full address
// is the tag.
//
// The cache is architecturally invisible: a hit produces byte-for-byte the
// state a cold decode would. Its contents and hit/miss counters ARE
// serialized in snapshots (snap/snapshot.h bumps the container version), so
// that a run restored from a checkpoint reports the same metrics as the
// straight run — the counters appear in msim --stats-json, which CI compares
// byte-identical across a checkpoint round trip.
#ifndef MSIM_CPU_PREDECODE_H_
#define MSIM_CPU_PREDECODE_H_

#include <cstdint>
#include <vector>

#include "isa/decode.h"
#include "support/result.h"
#include "trace/metrics.h"

namespace msim {

class SnapWriter;
class SnapReader;

struct PredecodeStats {
  uint64_t hits = 0;           // tag + generation match
  uint64_t verified_hits = 0;  // stale generation, raw word verified unchanged
  uint64_t misses = 0;
  uint64_t invalidations = 0;  // InvalidateAll calls (program load, restore, icache upsets)
};

class PredecodeCache {
 public:
  // `entries` must be zero (cache disabled) or a power of two.
  explicit PredecodeCache(uint32_t entries);

  bool enabled() const { return !slots_.empty(); }

  // Generation-checked lookup. Returns the cached decode when the entry for
  // `addr` was filled under the current `gen`, else nullptr. Counts a hit;
  // misses are counted by Verify/Insert so a Find-then-Verify pair on the
  // same fetch records exactly one event.
  const Decoded* Find(uint32_t addr, uint64_t gen) {
    if (slots_.empty()) {
      return nullptr;
    }
    Slot& slot = slots_[Index(addr)];
    if (slot.valid && slot.addr == addr && slot.gen == gen) {
      ++stats_.hits;
      return &slot.d;
    }
    return nullptr;
  }

  // Side-effect-free variant of Find: no counter is touched. Used by the
  // hot-path stepper to test fetch eligibility BEFORE committing a cycle —
  // if the cycle commits, the counting Find/Verify/Insert runs then.
  const Decoded* Peek(uint32_t addr, uint64_t gen) const {
    if (slots_.empty()) {
      return nullptr;
    }
    const Slot& slot = slots_[Index(addr)];
    if (slot.valid && slot.addr == addr && slot.gen == gen) {
      return &slot.d;
    }
    return nullptr;
  }

  // Stale-generation revalidation: when the entry's tag matches and the
  // re-read `raw` equals the cached word, refresh the generation and return
  // the decode (verified hit). Otherwise counts a miss and returns nullptr;
  // the caller decodes and calls Insert.
  const Decoded* Verify(uint32_t addr, uint64_t gen, uint32_t raw) {
    if (slots_.empty()) {
      return nullptr;
    }
    Slot& slot = slots_[Index(addr)];
    if (slot.valid && slot.addr == addr && slot.raw == raw) {
      slot.gen = gen;
      ++stats_.verified_hits;
      return &slot.d;
    }
    ++stats_.misses;
    return nullptr;
  }

  // Hot-path port (Core::StepFast): Peek-confirmed hits are counted locally
  // by the stepper and credited in bulk at window exit. Final counter values
  // match a per-cycle run; only the increment order differs, and the counters
  // are only observable at step boundaries.
  void CreditHits(uint64_t n) { stats_.hits += n; }

  void Insert(uint32_t addr, uint64_t gen, uint32_t raw, const Decoded& d) {
    if (slots_.empty()) {
      return;
    }
    Slot& slot = slots_[Index(addr)];
    slot.valid = true;
    slot.addr = addr;
    slot.raw = raw;
    slot.gen = gen;
    slot.d = d;
  }

  void InvalidateAll();

  const PredecodeStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PredecodeStats{}; }
  void RegisterMetrics(MetricRegistry& registry) const;

  // Checkpoint/restore (src/snap): valid entries (sparse) and counters.
  // Decoded is rebuilt from the raw word. Restore fails if the saved entry
  // count differs from this cache's geometry (CoreConfig::predecode_entries
  // is part of the snapshot config hash).
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

 private:
  struct Slot {
    bool valid = false;
    uint32_t addr = 0;
    uint32_t raw = 0;
    uint64_t gen = 0;
    Decoded d;
  };

  uint32_t Index(uint32_t addr) const { return (addr >> 2) & mask_; }

  std::vector<Slot> slots_;
  uint32_t mask_ = 0;
  PredecodeStats stats_;
};

}  // namespace msim

#endif  // MSIM_CPU_PREDECODE_H_
