// Exception causes and interrupt lines.
//
// The processor delegates ALL exception and interrupt delivery to mroutines
// (paper §2.3): there is no hardware trap vector. A delegation table maps
// each cause to an mroutine entry number; an undelegated exception halts the
// simulation with an error (it would be a machine check on real hardware).
#ifndef MSIM_CPU_TRAP_H_
#define MSIM_CPU_TRAP_H_

#include <cstdint>

namespace msim {

enum class ExcCause : uint32_t {
  kNone = 0,
  kIllegalInstruction = 1,
  kMisalignedLoad = 2,
  kMisalignedStore = 3,
  kMisalignedFetch = 4,
  kTlbMissLoad = 5,
  kTlbMissStore = 6,
  kTlbMissFetch = 7,
  kPageFaultLoad = 8,    // permission violation on a present mapping
  kPageFaultStore = 9,
  kPageFaultFetch = 10,
  kKeyViolation = 11,    // page-key permission check failed
  kEcall = 12,
  kBreakpoint = 13,
  kPrivilegeViolation = 14,  // Metal-only instruction in normal mode
  kBusError = 15,            // access outside DRAM/MMIO
  kMramOutOfBounds = 16,     // mld/mst outside the MRAM data segment
  kIntercept = 17,           // instruction interception (internal cause)
  kMachineCheck = 18,        // detected corruption, double trap or watchdog
  kCount,
};

// Sub-cause of a machine check, written to the MCHECKKIND control register
// when the check is delivered (and recorded in crash dumps otherwise).
enum class McheckKind : uint32_t {
  kNone = 0,
  kMramCodeParity = 1,   // parity mismatch on an MRAM code fetch
  kMramDataParity = 2,   // parity mismatch on an mld
  kWatchdog = 3,         // Metal-mode residency exceeded the watchdog budget
  kDoubleTrap = 4,       // a Metal-mode instruction raised an exception
};

const char* McheckKindName(McheckKind kind);

// Number of delegatable causes (delegation table size).
inline constexpr uint32_t kNumExcCauses = static_cast<uint32_t>(ExcCause::kCount);

// Returns a stable name for diagnostics.
const char* ExcCauseName(ExcCause cause);

// MCAUSE encoding: exceptions are the raw cause value; interrupts set the top
// bit and carry the line number in the low bits.
inline constexpr uint32_t kInterruptCauseFlag = 0x80000000u;
inline uint32_t InterruptCause(uint32_t line) { return kInterruptCauseFlag | line; }

// Interrupt lines.
inline constexpr uint32_t kIrqTimer = 0;
inline constexpr uint32_t kIrqNic = 1;
inline constexpr uint32_t kIrqConsole = 2;
inline constexpr uint32_t kIrqSoftware = 3;
inline constexpr uint32_t kNumIrqLines = 32;

inline const char* ExcCauseName(ExcCause cause) {
  switch (cause) {
    case ExcCause::kNone: return "none";
    case ExcCause::kIllegalInstruction: return "illegal_instruction";
    case ExcCause::kMisalignedLoad: return "misaligned_load";
    case ExcCause::kMisalignedStore: return "misaligned_store";
    case ExcCause::kMisalignedFetch: return "misaligned_fetch";
    case ExcCause::kTlbMissLoad: return "tlb_miss_load";
    case ExcCause::kTlbMissStore: return "tlb_miss_store";
    case ExcCause::kTlbMissFetch: return "tlb_miss_fetch";
    case ExcCause::kPageFaultLoad: return "page_fault_load";
    case ExcCause::kPageFaultStore: return "page_fault_store";
    case ExcCause::kPageFaultFetch: return "page_fault_fetch";
    case ExcCause::kKeyViolation: return "key_violation";
    case ExcCause::kEcall: return "ecall";
    case ExcCause::kBreakpoint: return "breakpoint";
    case ExcCause::kPrivilegeViolation: return "privilege_violation";
    case ExcCause::kBusError: return "bus_error";
    case ExcCause::kMramOutOfBounds: return "mram_out_of_bounds";
    case ExcCause::kIntercept: return "intercept";
    case ExcCause::kMachineCheck: return "machine_check";
    case ExcCause::kCount: break;
  }
  return "unknown";
}

inline const char* McheckKindName(McheckKind kind) {
  switch (kind) {
    case McheckKind::kNone: return "none";
    case McheckKind::kMramCodeParity: return "mram_code_parity";
    case McheckKind::kMramDataParity: return "mram_data_parity";
    case McheckKind::kWatchdog: return "watchdog";
    case McheckKind::kDoubleTrap: return "double_trap";
  }
  return "unknown";
}

}  // namespace msim

#endif  // MSIM_CPU_TRAP_H_
