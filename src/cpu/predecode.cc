#include "cpu/predecode.h"

#include "snap/snapstream.h"
#include "support/strings.h"

namespace msim {

PredecodeCache::PredecodeCache(uint32_t entries) {
  if (entries == 0) {
    return;
  }
  // Round up to a power of two so Index() is a mask.
  uint32_t size = 1;
  while (size < entries) {
    size <<= 1;
  }
  slots_.resize(size);
  mask_ = size - 1;
}

void PredecodeCache::InvalidateAll() {
  if (slots_.empty()) {
    return;
  }
  for (Slot& slot : slots_) {
    slot.valid = false;
  }
  ++stats_.invalidations;
}

void PredecodeCache::RegisterMetrics(MetricRegistry& registry) const {
  registry.Register("predecode", "hits", &stats_.hits,
                    "fetches served from the decoded-instruction cache");
  registry.Register("predecode", "verified_hits", &stats_.verified_hits,
                    "stale-generation entries revalidated against the backing word");
  registry.Register("predecode", "misses", &stats_.misses, "fetches that ran the full decoder");
  registry.Register("predecode", "invalidations", &stats_.invalidations,
                    "whole-cache invalidations (program load, restore, icache upsets)");
}

void PredecodeCache::SaveState(SnapWriter& w) const {
  w.U32(static_cast<uint32_t>(slots_.size()));
  w.U64(stats_.hits);
  w.U64(stats_.verified_hits);
  w.U64(stats_.misses);
  w.U64(stats_.invalidations);
  uint32_t valid = 0;
  for (const Slot& slot : slots_) {
    if (slot.valid) {
      ++valid;
    }
  }
  w.U32(valid);
  for (const Slot& slot : slots_) {
    if (!slot.valid) {
      continue;
    }
    w.U32(slot.addr);
    w.U32(slot.raw);
    w.U64(slot.gen);
  }
}

Status PredecodeCache::RestoreState(SnapReader& r) {
  const uint32_t saved_size = r.U32();
  stats_.hits = r.U64();
  stats_.verified_hits = r.U64();
  stats_.misses = r.U64();
  stats_.invalidations = r.U64();
  const uint32_t valid = r.U32();
  MSIM_RETURN_IF_ERROR(r.ToStatus("predecode header"));
  if (saved_size != slots_.size()) {
    return InvalidArgument(
        StrFormat("snapshot predecode geometry (%u entries) differs from this core (%u)",
                  saved_size, static_cast<uint32_t>(slots_.size())));
  }
  for (Slot& slot : slots_) {
    slot.valid = false;
  }
  for (uint32_t i = 0; i < valid; ++i) {
    const uint32_t addr = r.U32();
    const uint32_t raw = r.U32();
    const uint64_t gen = r.U64();
    MSIM_RETURN_IF_ERROR(r.ToStatus("predecode entry"));
    Slot& slot = slots_[Index(addr)];
    slot.valid = true;
    slot.addr = addr;
    slot.raw = raw;
    slot.gen = gen;
    slot.d = DecodeInstr(raw);
  }
  return r.ToStatus("predecode entries");
}

}  // namespace msim
