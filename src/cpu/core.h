// Cycle-level model of the paper's 5-stage pipelined RISC processor with the
// Metal extension.
//
// Pipeline model. The five stages are IF, ID, EX, MEM and (implicit) WB.
// Stages are processed in reverse order each cycle (MEM, EX, ID, IF) so that
// older instructions observe redirects/faults before younger ones advance.
// Architectural effects are applied at EX (ALU, branches, Metal state) and at
// MEM completion (loads/stores); because the pipeline is in-order and stages
// are processed oldest-first, this is functionally equivalent to a 5-stage
// with full forwarding, and the classic hazards are modeled explicitly for
// timing:
//   * 1-cycle load-use bubble (detected in ID),
//   * 2-cycle flush for control transfers resolved in EX,
//   * multi-cycle D-side accesses occupy MEM and stall the pipe,
//   * multi-cycle I-side misses starve ID.
// WB carries no modeled behaviour (no structural hazard on the register file
// is simulated), so retirement is counted at MEM completion.
//
// Metal mode transitions (paper §2.2). With fast_transition enabled and
// mroutines stored in MRAM, `menter` is REPLACED in the decode stage by the
// first instruction of the target mroutine (fetched combinationally from
// MRAM) and `mexit` is replaced by the resume-stream instruction, so a no-op
// mroutine round trip adds ~0 cycles. The mode switch itself travels with the
// replacement instruction and commits at EX, so an older instruction that
// faults in MEM squashes a speculatively entered mroutine cleanly. With
// fast_transition disabled (ablation) or DRAM-resident mroutines (trap and
// PALcode comparison configurations), menter/mexit behave like jumps resolved
// at EX.
#ifndef MSIM_CPU_CORE_H_
#define MSIM_CPU_CORE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "asm/program.h"
#include "cpu/config.h"
#include "cpu/metal_unit.h"
#include "cpu/predecode.h"
#include "cpu/superblock.h"
#include "cpu/trap.h"
#include "dev/console.h"
#include "dev/intc.h"
#include "dev/nic.h"
#include "dev/timer.h"
#include "isa/decode.h"
#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/mram.h"
#include "mmu/mmu.h"
#include "support/result.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace msim {

class FaultEngine;
class SnapWriter;
class SnapReader;

struct CoreStats {
  uint64_t cycles = 0;
  uint64_t instret = 0;
  uint64_t metal_instret = 0;   // instructions retired in Metal mode
  uint64_t metal_cycles = 0;    // cycles with the committed mode == Metal
  uint64_t menters = 0;
  uint64_t mexits = 0;
  uint64_t fast_replacements = 0;  // decode-stage menter/mexit replacements
  uint64_t exceptions = 0;
  uint64_t interrupts = 0;
  uint64_t intercepts = 0;
  uint64_t control_flushes = 0;
  uint64_t load_use_stalls = 0;
  uint64_t machine_checks = 0;   // machine checks raised (delegated or fatal)
  uint64_t watchdog_fires = 0;   // metal-mode watchdog expirations
};

struct RunResult {
  enum class Reason { kHalted, kCycleLimit, kFatal };
  Reason reason = Reason::kCycleLimit;
  uint32_t exit_code = 0;
  uint64_t cycles = 0;
  uint64_t instret = 0;
  std::string fatal_message;  // set when reason == kFatal
};

class Core {
 public:
  explicit Core(const CoreConfig& config = CoreConfig{});
  ~Core();

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  // Loads a program's sections into DRAM and points fetch at its entry.
  Status LoadProgram(const Program& program);

  // Advances one clock cycle.
  void StepCycle();

  // Hot-path stepping (docs/performance.md): commits whole cycles of
  // straight-line non-Metal code without per-cycle device polling or latch
  // shuffling, falling back (returning) as soon as anything interesting —
  // a load/store, a Metal transition, an icache miss, a pending device event,
  // a deliverable interrupt — would enter the pipeline. Cycle-exact: after N
  // committed cycles the machine state is byte-identical to N StepCycle
  // calls (enforced by `msim replay --compare --b-no-fast-step` and the
  // mfuzz "faststep" oracle). Returns the number of cycles committed; 0 when
  // the current state is not eligible (caller falls back to StepCycle).
  // `max_retires` (0 = unlimited) additionally bounds the number of retired
  // instructions, for retire-granular lockstep drivers.
  uint64_t StepFast(uint64_t max_cycles, uint64_t max_retires = 0);

  // Runs until halt, fatal error or the cycle budget is exhausted. Uses
  // StepFast when config().fast_step is set.
  RunResult Run(uint64_t max_cycles = 0);

  // --- component access ---
  const CoreConfig& config() const { return config_; }
  Bus& bus() { return bus_; }
  Mram& mram() { return mram_; }
  Mmu& mmu() { return mmu_; }
  MetalUnit& metal() { return metal_; }
  const MetalUnit& metal() const { return metal_; }
  InterruptController& intc() { return intc_; }
  TimerDevice& timer() { return timer_; }
  NicDevice& nic() { return nic_; }
  ConsoleDevice& console() { return console_; }
  Cache& icache() { return icache_; }
  Cache& dcache() { return dcache_; }
  PredecodeCache& predecode() { return predecode_; }
  const PredecodeCache& predecode() const { return predecode_; }
  SuperblockCache& superblocks() { return superblocks_; }
  const SuperblockCache& superblocks() const { return superblocks_; }

  // --- architectural state ---
  uint32_t ReadReg(uint8_t index) const { return regs_[index & 31]; }
  void WriteReg(uint8_t index, uint32_t value) {
    if ((index & 31) != 0) {
      regs_[index & 31] = value;
    }
  }
  void SetPc(uint32_t pc);
  bool metal_mode() const { return arch_metal_; }
  // Where the fetch unit will fetch next (the frontend pc, not a committed
  // pc — the pipeline has no single architectural pc between retires).
  uint32_t fetch_pc() const { return fetch_pc_; }
  bool halted() const { return halted_; }
  uint32_t exit_code() const { return exit_code_; }
  bool has_fatal() const { return has_fatal_; }
  const Status& fatal_status() const { return fatal_; }
  uint64_t cycle() const { return cycle_; }
  bool in_machine_check() const { return in_machine_check_; }

  // --- fault injection (src/fault) ---
  // Attaches a fault-injection engine; its Tick() runs at the top of every
  // StepCycle, before any stage logic. Null detaches.
  void SetFaultEngine(FaultEngine* engine) { fault_engine_ = engine; }
  // Arms a one-shot corruption of the next completed load's response: the
  // loaded value becomes (value & and_mask) ^ xor_mask. Models a bus glitch;
  // the corruption is silent (no machine check) by design.
  void ArmBusFault(uint32_t and_mask, uint32_t xor_mask) {
    bus_fault_armed_ = true;
    bus_fault_and_ = and_mask;
    bus_fault_xor_ = xor_mask;
  }

  // Delivers a machine check (docs/robustness.md). Unlike ordinary traps,
  // machine checks are deliverable FROM Metal mode: the delegated recovery
  // mroutine starts a fresh Metal context whose mexit resumes the normal-mode
  // program at the aborted mroutine's m31. A machine check raised while one is
  // already being handled, or with no delegated recovery entry, is fatal.
  void RaiseMachineCheck(McheckKind kind, uint32_t info, uint32_t epc);

  // The shared structured-event tracer (components and the fault engine emit
  // through it; events are dropped unless a sink is attached).
  Tracer& tracer() { return tracer_; }

  const CoreStats& stats() const { return stats_; }
  void ResetStats();

  // Enumerable counters: every CoreStats field plus the cache/TLB/MRAM/Metal
  // unit and device counters, registered at construction (trace/metrics.h).
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }

  // Attaches a structured-event sink (trace/trace.h) fed by the pipeline and
  // all instrumented components; null detaches. Like the retirement trace,
  // emission costs one predictable branch when no sink is attached.
  void SetTraceSink(TraceSink* sink);

  // --- checkpoint/restore (src/snap) ---
  // Serializes the complete machine state: registers, every pipeline latch,
  // Metal unit, MRAM (with shadow/parity), TLB, caches, devices, statistics
  // and — when `include_dram` — physical memory (sparse). The byte stream is
  // deterministic: two machines in identical states serialize identically.
  void SaveState(SnapWriter& w, bool include_dram = true) const;
  // Inverse of SaveState. The core must have been constructed with the same
  // CoreConfig (snapshot.h validates this via CoreConfigHash before calling).
  Status RestoreState(SnapReader& r);
  // FNV-1a digest of the SaveState byte stream; cheap enough to evaluate per
  // cycle (no allocation). Excluding DRAM keeps it O(fixed state) — MRAM,
  // whose contents Metal code mutates, is always included.
  uint64_t StateDigest(bool include_dram = false) const;

  // Retirement trace: when set, the callback fires once per architecturally
  // retired instruction, in program order. Useful for debugging mroutines
  // (tools/msim --trace) and for test assertions; adds no cost when unset.
  struct RetireEvent {
    uint64_t cycle = 0;
    uint32_t pc = 0;
    uint32_t raw = 0;
    bool metal = false;  // retired under Metal privileges
  };
  using RetireTrace = std::function<void(const RetireEvent&)>;
  void SetRetireTrace(RetireTrace trace) { retire_trace_ = std::move(trace); }

 private:
  // In-flight instruction micro-state. Decode-stage replacement can merge a
  // CHAIN of transitions into one op (e.g. menter -> empty mroutine's mexit,
  // or an mexit whose resume instruction is itself a menter), so enters and
  // exits are counted; the committed mode after the op is simply the mode the
  // final replacement instruction decodes in (`metal`).
  // One folded decode-stage transition, recorded so trace events can be
  // emitted in committed order at EX (speculative chains that get squashed
  // are never emitted).
  struct ChainStep {
    bool is_enter = false;
    uint8_t entry = 0;    // enters: the target mroutine entry
    uint32_t pc = 0;      // pc of the replaced menter/mexit
    uint32_t target = 0;  // enters: handler address; exits: resume address
  };

  struct Op {
    bool valid = false;
    uint32_t pc = 0;
    Decoded d;
    bool metal = false;      // executes with Metal privileges; also the
                             // committed mode after any transition chain
    uint8_t enters = 0;      // menter transitions folded into this op
    uint8_t exits = 0;       // mexit transitions folded into this op
    uint32_t link = 0;       // m31 link value of the LAST menter in the chain
    std::array<ChainStep, 4> chain{};  // bounded by the replacement guard
    uint8_t chain_len = 0;
    bool intercepted = false;
    uint8_t intercept_entry = 0;
    ExcCause fetch_fault = ExcCause::kNone;
    uint32_t fetch_fault_addr = 0;

    bool has_transition() const { return enters != 0 || exits != 0; }
  };

  struct FetchSlot {
    bool valid = false;
    uint32_t pc = 0;
    uint32_t raw = 0;
    Decoded d;  // predecoded at fetch; meaningful only when fault == kNone
    bool metal = false;
    ExcCause fault = ExcCause::kNone;
    uint32_t fault_addr = 0;
  };

  // Pending D-side access occupying the MEM stage.
  struct MemOp {
    bool valid = false;
    uint32_t pc = 0;
    InstrKind kind = InstrKind::kIllegal;
    bool metal = false;
    bool is_store = false;
    uint32_t vaddr = 0;   // as computed at EX (virtual for normal-mode ops)
    uint32_t paddr = 0;
    uint32_t store_value = 0;
    uint32_t raw = 0;
    uint8_t rd = 0;
    uint32_t wait = 0;    // remaining cycles
    enum class Target { kDram, kMmio, kMramData } target = Target::kDram;
  };

  // --- stage logic ---
  void StageMem();
  void StageEx();
  void StageId();
  void StageIf();

  // Executes one op in EX. Returns false if the op trapped or redirected.
  void ExecuteOp(Op& op);
  void ExecuteAluOp(Op& op);
  bool StartMemOp(const Op& op);  // pushes into ex_mem_; may trap

  // Decode-stage replacement chain for menter/mexit (fast transitions).
  void IdReplacementChain(Op& op);

  // Trap machinery. `m31` is the resume address stored into m31.
  void TakeTrapToEntry(uint32_t entry, uint32_t cause, uint32_t epc, uint32_t badvaddr,
                       uint32_t instr, uint32_t m31, bool faulting_op_is_metal);
  void TakeException(ExcCause cause, uint32_t epc, uint32_t badvaddr, uint32_t instr,
                     uint32_t m31, bool faulting_op_is_metal);
  void Fatal(const std::string& message);

  // Squashes younger instructions (IF/ID latches and in-flight fetch).
  void FlushFrontend();

  // Redirects fetch to `target` (after a taken branch/jump/trap).
  void RedirectFetch(uint32_t target);

  // Squashes the fetch unit and points it at `pc` (the shared primitive
  // behind SetPc, FlushFrontend and the decode-stage replacement chain).
  void ResetFetch(uint32_t pc);

  // True if executing `op` in EX would redirect fetch (taken branch/jump).
  // Pure: reads the register file only. Must agree with ExecuteAluOp for
  // every hot-path instruction kind (StepFast relies on this to decide
  // whether the same cycle also fetches).
  bool AluRedirects(const Decoded& d) const;

  // Fetch helpers.
  struct FetchResult {
    bool ok = false;
    uint32_t raw = 0;
    Decoded d;  // filled (via the predecode cache) when ok
    uint32_t latency = 1;
    ExcCause fault = ExcCause::kNone;
    uint32_t fault_addr = 0;
  };
  FetchResult AccessFetch(uint32_t pc, bool metal_frontend, bool timing);

  // Memory-region classification + latency for a D-side physical access.
  uint32_t DataAccessLatency(uint32_t paddr, bool metal_op);

  bool InterruptDeliverable() const;

  // Registers every component's counters into metrics_ (constructor only).
  void RegisterMetrics();

  CoreConfig config_;
  Bus bus_;
  Mram mram_;
  Mmu mmu_;
  Cache icache_;
  Cache dcache_;
  PredecodeCache predecode_;
  SuperblockCache superblocks_;
  MetalUnit metal_;
  InterruptController intc_;
  TimerDevice timer_;
  NicDevice nic_;
  ConsoleDevice console_;

  std::array<uint32_t, 32> regs_{};
  uint64_t cycle_ = 0;

  // Fetch unit.
  uint32_t fetch_pc_ = 0;
  bool frontend_metal_ = false;
  bool fetch_inflight_ = false;
  uint32_t fetch_wait_ = 0;
  FetchSlot fetch_buffer_;  // completed fetch waiting for if_id_

  FetchSlot if_id_;
  Op id_ex_;
  MemOp ex_mem_;

  bool arch_metal_ = false;
  int inflight_mode_ops_ = 0;

  // Machine-check / watchdog state (docs/robustness.md).
  bool in_machine_check_ = false;       // set at delivery, cleared at committed mexit
  uint64_t metal_resident_cycles_ = 0;  // consecutive cycles with committed mode == Metal
  uint8_t last_metal_entry_ = 0;        // entry of the most recent Metal-mode entry
  FaultEngine* fault_engine_ = nullptr;
  bool bus_fault_armed_ = false;
  uint32_t bus_fault_and_ = 0xFFFFFFFFu;
  uint32_t bus_fault_xor_ = 0;

  // Hazard bookkeeping: rd of a load processed by EX this cycle (load-use).
  bool ex_load_this_cycle_ = false;
  uint8_t ex_load_rd_ = 0;
  bool redirect_this_cycle_ = false;

  RetireTrace retire_trace_;
  MetricRegistry metrics_;
  Tracer tracer_;

  bool halted_ = false;
  uint32_t exit_code_ = 0;
  bool has_fatal_ = false;
  Status fatal_;

  CoreStats stats_;
};

}  // namespace msim

#endif  // MSIM_CPU_CORE_H_
