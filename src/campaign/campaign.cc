#include "campaign/campaign.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <sstream>

#include "cpu/core.h"
#include "mem/mram.h"
#include "metal/system.h"
#include "snap/snapshot.h"
#include "snap/snapstream.h"
#include "support/rng.h"
#include "support/strings.h"
#include "trace/json.h"
#include "trace/trace.h"

namespace msim {
namespace {

void FnvMix(uint64_t& h, uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    h ^= (value >> (8 * b)) & 0xFF;
    h *= kFnvPrime;
  }
}

// Captures the cycle of the first machine check a trial raises. Attaching a
// sink is architecturally invisible, so instrumented and uninstrumented
// trials stay byte-identical.
class FirstMcheckSink : public TraceSink {
 public:
  void OnEvent(const TraceEvent& event) override {
    if (event.kind == TraceEventKind::kMachineCheck && !seen_) {
      seen_ = true;
      cycle_ = event.cycle;
    }
  }
  bool seen() const { return seen_; }
  uint64_t cycle() const { return cycle_; }

 private:
  bool seen_ = false;
  uint64_t cycle_ = 0;
};

// Runs `core` until halt, fatal fault or the absolute cycle `budget`.
void RunToBudget(Core& core, uint64_t budget) {
  while (!core.halted() && !core.has_fatal() && core.cycle() < budget) {
    core.Run(budget - core.cycle());
  }
}

std::string HexDigest(uint64_t digest) {
  return StrFormat("0x%016llx", static_cast<unsigned long long>(digest));
}

Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Internal(StrFormat("cannot write '%s'", path.c_str()));
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out.good()) {
    return Internal(StrFormat("write to '%s' failed", path.c_str()));
  }
  return Status::Ok();
}

Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST) {
    return Internal(StrFormat("cannot create directory '%s'", path.c_str()));
  }
  return Status::Ok();
}

// Self-contained SDC repro directory: guest sources, spec, divergence report
// and a repro.sh replaying the corruption with `msim replay` (exit 10 =
// divergence reproduced). The replay does not need machine-check delegation:
// an SDC is by definition silent, so no machine check fires on the B side.
Status HarvestSdcRepro(const CampaignOptions& options, const TrialRecord& record,
                       uint64_t trial_budget, std::string* repro_dir_name) {
  MSIM_RETURN_IF_ERROR(MakeDir(options.out_dir));
  const std::string dir_name =
      StrFormat("sdc-%llu", static_cast<unsigned long long>(record.plan.index));
  const std::string dir = options.out_dir + "/" + dir_name;
  MSIM_RETURN_IF_ERROR(MakeDir(dir));
  for (const ReproFile& file : options.repro_files) {
    MSIM_RETURN_IF_ERROR(WriteTextFile(dir + "/" + file.name, file.contents));
  }
  MSIM_RETURN_IF_ERROR(WriteTextFile(dir + "/spec.txt", record.plan.spec.text + "\n"));
  if (record.has_divergence) {
    std::ostringstream div;
    WriteDivergenceJson(record.divergence, div);
    div << "\n";
    MSIM_RETURN_IF_ERROR(WriteTextFile(dir + "/divergence.json", div.str()));
  }
  const std::string script = StrFormat(
      "#!/bin/sh\n"
      "# Silent-data-corruption repro harvested by mcamp.\n"
      "# Replays the campaign trial in cycle-lockstep against a clean run;\n"
      "# exit status 10 means the divergence reproduced.\n"
      "cd \"$(dirname \"$0\")\"\n"
      "exec \"${MSIM:-msim}\" replay %s --until-divergence \\\n"
      "  --b-inject '%s' --max-cycles %llu\n",
      options.repro_msim_args.c_str(), record.plan.spec.text.c_str(),
      static_cast<unsigned long long>(trial_budget));
  MSIM_RETURN_IF_ERROR(WriteTextFile(dir + "/repro.sh", script));
  ::chmod((dir + "/repro.sh").c_str(), 0755);
  *repro_dir_name = dir_name;
  return Status::Ok();
}

void AppendOutcomeCounts(JsonWriter& json,
                         const std::array<uint64_t, kNumTrialOutcomes>& counts) {
  for (size_t i = 0; i < kNumTrialOutcomes; ++i) {
    json.Field(TrialOutcomeName(static_cast<TrialOutcome>(i)), counts[i]);
  }
}

void AppendTrialRecordJson(JsonWriter& json, const TrialRecord& record) {
  json.BeginObject();
  json.Field("trial", record.plan.index);
  json.Field("spec", record.plan.spec.text);
  json.Field("target", FaultTargetName(record.plan.spec.target));
  json.Field("inject_cycle", record.plan.spec.cycle);
  json.Field("outcome", TrialOutcomeName(record.outcome));
  json.Field("forked", record.forked);
  if (record.forked) {
    json.Field("fork_cycle", record.fork_cycle);
  }
  json.Field("detected", record.detected);
  if (record.detected) {
    json.Field("detect_cycle", record.detect_cycle);
    json.Field("detect_latency", record.detect_latency);
  }
  json.Field("halted", record.result.halted);
  json.Field("exit_code", record.result.exit_code);
  json.Field("cycles", record.result.cycles);
  json.Field("machine_checks", record.result.machine_checks);
  json.Field("arch_digest", HexDigest(record.result.arch_digest));
  if (!record.result.fatal_message.empty()) {
    json.Field("fatal_message", record.result.fatal_message);
  }
  if (!record.repro_dir.empty()) {
    json.Field("repro_dir", record.repro_dir);
  }
  if (record.has_divergence) {
    json.BeginObject("divergence");
    json.Field("diverged", record.divergence.diverged);
    json.Field("cycle", record.divergence.cycle_a);
    json.BeginArray("components");
    for (const std::string& component : record.divergence.components) {
      json.Value(component);
    }
    json.EndArray();
    json.Field("summary", record.divergence.summary);
    json.EndObject();
  }
  json.EndObject();
}

}  // namespace

uint64_t ArchitecturalDigest(Core& core) {
  uint64_t h = kFnvOffsetBasis;
  for (uint8_t reg = 1; reg < 32; ++reg) {
    FnvMix(h, core.ReadReg(reg));
  }
  FnvMix(h, core.halted() ? 1 : 0);
  FnvMix(h, core.has_fatal() ? 1 : 0);
  FnvMix(h, core.exit_code());
  const std::string& console = core.console().output();
  FnvMix(h, console.size());
  for (char c : console) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

ArchOutcome CaptureArchOutcome(Core& core) {
  ArchOutcome outcome;
  outcome.halted = core.halted();
  outcome.fatal = core.has_fatal();
  outcome.exit_code = core.exit_code();
  outcome.cycles = core.cycle();
  outcome.instret = core.stats().instret;
  outcome.machine_checks = core.stats().machine_checks;
  outcome.parity_errors = core.mram().stats().parity_errors;
  outcome.words_scrubbed = core.mram().stats().words_scrubbed;
  outcome.console = core.console().output();
  outcome.fatal_message = core.fatal_status().message();
  outcome.arch_digest = ArchitecturalDigest(core);
  outcome.state_digest = core.StateDigest(/*include_dram=*/true);
  return outcome;
}

const char* TrialOutcomeName(TrialOutcome outcome) {
  switch (outcome) {
    case TrialOutcome::kMasked: return "masked";
    case TrialOutcome::kDetectedRecovered: return "detected_recovered";
    case TrialOutcome::kDetectedFatal: return "detected_fatal";
    case TrialOutcome::kSdc: return "sdc";
    case TrialOutcome::kHang: return "hang";
    case TrialOutcome::kCrash: return "crash";
  }
  return "unknown";
}

TrialOutcome ClassifyTrial(const ArchOutcome& golden, const ArchOutcome& trial) {
  if (trial.fatal) {
    // Both fatal machine-check messages (undelegated and double) name the
    // mechanism; any other fatal is an uncontrolled crash.
    return trial.fatal_message.find("machine check") != std::string::npos
               ? TrialOutcome::kDetectedFatal
               : TrialOutcome::kCrash;
  }
  if (!trial.halted) {
    return TrialOutcome::kHang;
  }
  if (trial.arch_digest == golden.arch_digest) {
    return trial.machine_checks > golden.machine_checks ? TrialOutcome::kDetectedRecovered
                                                        : TrialOutcome::kMasked;
  }
  return TrialOutcome::kSdc;
}

CampaignEngine::CampaignEngine(const CoreConfig& config, SystemSetup setup,
                               CampaignOptions options)
    : config_(config), setup_(std::move(setup)), options_(std::move(options)) {
  if (options_.targets.empty()) {
    options_.targets = {FaultTarget::kMramCode, FaultTarget::kMramData, FaultTarget::kMreg,
                        FaultTarget::kTlb,      FaultTarget::kICache,   FaultTarget::kDCache,
                        FaultTarget::kBus};
  }
  if (options_.hang_factor < 2) {
    options_.hang_factor = 2;
  }
}

CampaignEngine::~CampaignEngine() = default;

uint64_t CampaignEngine::trial_budget() const {
  return golden_.cycles * options_.hang_factor;
}

Result<std::unique_ptr<MetalSystem>> CampaignEngine::BuildSystem() const {
  auto system = std::make_unique<MetalSystem>(config_);
  if (setup_) {
    MSIM_RETURN_IF_ERROR(setup_(*system));
  }
  MSIM_RETURN_IF_ERROR(system->Boot());
  return system;
}

Status CampaignEngine::Prepare() {
  if (prepared_) {
    return Status::Ok();
  }
  const uint64_t budget =
      options_.max_cycles != 0 ? options_.max_cycles : config_.default_max_cycles;

  // Pass 1: the golden reference execution. The campaign's whole differential
  // methodology assumes a well-defined golden outcome, so anything but a
  // clean halt is a configuration error.
  MSIM_ASSIGN_OR_RETURN(std::unique_ptr<MetalSystem> system, BuildSystem());
  RunToBudget(system->core(), budget);
  if (system->core().has_fatal()) {
    return FailedPrecondition(StrFormat("golden run died fatally: %s",
                                        system->core().fatal_status().message().c_str()));
  }
  if (!system->core().halted()) {
    return FailedPrecondition(StrFormat(
        "golden run did not halt within %llu cycles; raise --max-cycles",
        static_cast<unsigned long long>(budget)));
  }
  golden_ = CaptureArchOutcome(system->core());
  if (golden_.cycles < 2) {
    return FailedPrecondition("golden run is too short to inject into (needs >= 2 cycles)");
  }

  // Pass 2: replay the golden run, snapshotting at evenly spaced fork points
  // j * C / (snapshots + 1). The replay is byte-identical to pass 1 (the
  // machine is deterministic), so the snapshots ARE golden states.
  snapshots_.clear();
  if (options_.use_forks && options_.snapshots != 0) {
    MSIM_ASSIGN_OR_RETURN(std::unique_ptr<MetalSystem> replay, BuildSystem());
    Core& core = replay->core();
    for (uint32_t j = 1; j <= options_.snapshots; ++j) {
      const uint64_t mark = golden_.cycles * j / (options_.snapshots + 1);
      if (mark == 0 || mark >= golden_.cycles ||
          (!snapshots_.empty() && mark <= snapshots_.back().first)) {
        continue;
      }
      RunToBudget(core, mark);
      if (core.halted() || core.has_fatal() || core.cycle() != mark) {
        return Internal(StrFormat(
            "golden replay desynchronized at fork mark %llu (cycle %llu)",
            static_cast<unsigned long long>(mark),
            static_cast<unsigned long long>(core.cycle())));
      }
      snapshots_.emplace_back(mark, SaveSnapshot(core));
    }
  }
  prepared_ = true;
  return Status::Ok();
}

std::vector<TrialPlan> CampaignEngine::PlanTrials() const {
  std::vector<TrialPlan> plans;
  if (!prepared_ || options_.trials == 0) {
    return plans;
  }
  plans.reserve(options_.trials);
  Rng rng(options_.seed ^ 0xCA3Bull);
  const uint64_t num_targets = options_.targets.size();
  // Live injection-cycle range: [1, C-1]. A fault at cycle >= C would never
  // fire before the (unperturbed) trial halts.
  const uint64_t cycle_lo = 1;
  const uint64_t cycle_hi = golden_.cycles - 1;
  const uint64_t span = cycle_hi - cycle_lo + 1;
  for (uint64_t i = 0; i < options_.trials; ++i) {
    TrialPlan plan;
    plan.index = i;
    const uint64_t target_slot = i % num_targets;
    const FaultTarget target = options_.targets[target_slot];
    // Stratified sampling: this target's k-th trial draws uniformly from its
    // k-th of N_t equal slices of the live range, so coverage is even over
    // the execution instead of clustering.
    const uint64_t k = i / num_targets;
    const uint64_t n_t = (options_.trials - target_slot + num_targets - 1) / num_targets;
    const uint64_t lo = cycle_lo + k * span / n_t;
    uint64_t hi = cycle_lo + (k + 1) * span / n_t - 1;
    hi = std::max(hi, lo);
    const uint64_t cycle = rng.Range(lo, std::min(hi, cycle_hi));
    uint32_t capacity = FaultTargetCapacity(target, config_);
    if (options_.max_location != 0 && options_.max_location < capacity) {
      capacity = options_.max_location;
    }
    const uint32_t location = static_cast<uint32_t>(rng.Below(capacity));
    const uint32_t bit = static_cast<uint32_t>(rng.Below(32));

    FaultSpec& spec = plan.spec;
    spec.target = target;
    spec.probabilistic = false;
    spec.cycle = cycle;
    spec.mask = 1u << bit;
    spec.mode = FaultMode::kFlip;
    if (target == FaultTarget::kBus) {
      // Bus faults have no location; the draw above keeps the RNG stream
      // uniform across targets.
      spec.has_at = false;
      spec.text = StrFormat("bus@%llu:bit=%u", static_cast<unsigned long long>(cycle), bit);
    } else {
      spec.has_at = true;
      const bool mram = target == FaultTarget::kMramCode || target == FaultTarget::kMramData;
      spec.at = mram ? location * 4 : location;  // MRAM locations are byte offsets
      spec.text = StrFormat("%s@%llu:at=%u,bit=%u", FaultTargetName(target),
                            static_cast<unsigned long long>(cycle), spec.at, bit);
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

Result<TrialRecord> CampaignEngine::RunTrial(const TrialPlan& plan, bool allow_fork) {
  if (!prepared_) {
    return FailedPrecondition("CampaignEngine::Prepare() has not run");
  }
  MSIM_RETURN_IF_ERROR(ValidateFaultSpec(plan.spec, config_, trial_budget()));

  TrialRecord record;
  record.plan = plan;

  MSIM_ASSIGN_OR_RETURN(std::unique_ptr<MetalSystem> system, BuildSystem());
  Core& core = system->core();

  FirstMcheckSink mcheck_sink;
  system->SetTraceSink(&mcheck_sink);

  // Campaign specs are fully pinned (one-shot cycle, location, mask), so
  // FaultEngine::Apply draws no RNG — the seed is irrelevant and forked and
  // cold-started trials see the identical injection.
  FaultEngine engine(0);
  engine.AddSpec(plan.spec);
  core.SetFaultEngine(&engine);

  if (allow_fork && !snapshots_.empty()) {
    // Latest fork point at or before the injection cycle. Forking at exactly
    // the injection cycle is safe: the engine's Tick runs at the top of the
    // next StepCycle, the same cycle a cold-started trial would fire at.
    const std::vector<uint8_t>* image = nullptr;
    uint64_t fork_cycle = 0;
    for (const auto& [cycle, bytes] : snapshots_) {
      if (cycle <= plan.spec.cycle) {
        image = &bytes;
        fork_cycle = cycle;
      }
    }
    if (image != nullptr) {
      MSIM_RETURN_IF_ERROR(RestoreSnapshot(core, *image));
      record.forked = true;
      record.fork_cycle = fork_cycle;
    }
  }

  RunToBudget(core, trial_budget());
  record.result = CaptureArchOutcome(core);
  record.outcome = ClassifyTrial(golden_, record.result);
  if (mcheck_sink.seen()) {
    record.detected = true;
    record.detect_cycle = mcheck_sink.cycle();
    record.detect_latency =
        record.detect_cycle >= plan.spec.cycle ? record.detect_cycle - plan.spec.cycle : 0;
  }
  return record;
}

Result<DivergenceReport> CampaignEngine::PinpointDivergence(const TrialPlan& plan) {
  if (!prepared_) {
    return FailedPrecondition("CampaignEngine::Prepare() has not run");
  }
  MSIM_ASSIGN_OR_RETURN(std::unique_ptr<MetalSystem> clean, BuildSystem());
  MSIM_ASSIGN_OR_RETURN(std::unique_ptr<MetalSystem> faulty, BuildSystem());
  FaultEngine engine(0);
  engine.AddSpec(plan.spec);
  faulty->core().SetFaultEngine(&engine);
  LockstepOptions options;
  // Identical timing configurations on both sides (the fault perturbs state,
  // not timing), so cycle granularity pinpoints the injection exactly.
  options.granularity = CompareGranularity::kCycle;
  options.max_cycles = trial_budget();
  return RunLockstep(*clean, *faulty, options);
}

Result<CampaignReport> RunCampaign(CampaignEngine& engine) {
  MSIM_RETURN_IF_ERROR(engine.Prepare());

  CampaignReport report;
  report.config = engine.config();
  report.options = engine.options();
  report.golden = engine.golden();
  report.cycle_lo = 1;
  report.cycle_hi = report.golden.cycles - 1;

  const CampaignOptions& options = engine.options();
  report.per_target.resize(options.targets.size());
  for (size_t t = 0; t < options.targets.size(); ++t) {
    report.per_target[t].target = options.targets[t];
  }

  const std::vector<TrialPlan> plans = engine.PlanTrials();
  for (const TrialPlan& plan : plans) {
    MSIM_ASSIGN_OR_RETURN(TrialRecord record, engine.RunTrial(plan));

    const size_t outcome_index = static_cast<size_t>(record.outcome);
    report.counts[outcome_index] += 1;
    if (record.forked) {
      report.forked_trials += 1;
    }
    TargetSummary& summary = report.per_target[plan.index % options.targets.size()];
    summary.trials += 1;
    summary.counts[outcome_index] += 1;
    if (record.detected) {
      summary.detect_latency.Record(record.detect_latency);
    }

    if (record.outcome == TrialOutcome::kSdc) {
      if (options.lockstep_sdc) {
        MSIM_ASSIGN_OR_RETURN(record.divergence, engine.PinpointDivergence(plan));
        record.has_divergence = true;
      }
      if (!options.out_dir.empty()) {
        MSIM_RETURN_IF_ERROR(HarvestSdcRepro(options, record, engine.trial_budget(),
                                             &record.repro_dir));
      }
      report.sdcs.push_back(record);
    }
    if (options.collect_trial_records) {
      report.trials.push_back(std::move(record));
    }
  }
  return report;
}

void WriteCampaignJson(const CampaignReport& report, std::ostream& out) {
  JsonWriter json(out);
  json.BeginObject();
  json.Field("campaign", static_cast<uint64_t>(1));

  json.BeginObject("config");
  json.Field("trials", report.options.trials);
  json.Field("seed", report.options.seed);
  json.Field("snapshots", report.options.snapshots);
  json.Field("use_forks", report.options.use_forks);
  json.Field("hang_factor", report.options.hang_factor);
  json.Field("max_location", static_cast<uint64_t>(report.options.max_location));
  json.Field("mram_parity", report.config.mram_parity);
  json.Field("watchdog_cycles", report.config.metal_watchdog_cycles);
  json.BeginArray("targets");
  for (const FaultTarget target : report.options.targets) {
    json.Value(FaultTargetName(target));
  }
  json.EndArray();
  json.EndObject();

  json.BeginObject("golden");
  json.Field("cycles", report.golden.cycles);
  json.Field("instret", report.golden.instret);
  json.Field("exit_code", report.golden.exit_code);
  json.Field("machine_checks", report.golden.machine_checks);
  json.Field("console_bytes", static_cast<uint64_t>(report.golden.console.size()));
  json.Field("arch_digest", HexDigest(report.golden.arch_digest));
  json.EndObject();

  json.BeginObject("fault_space");
  json.Field("cycle_lo", report.cycle_lo);
  json.Field("cycle_hi", report.cycle_hi);
  json.EndObject();

  uint64_t total = 0;
  for (const uint64_t count : report.counts) {
    total += count;
  }
  json.BeginObject("summary");
  json.Field("trials", total);
  AppendOutcomeCounts(json, report.counts);
  json.Field("forked", report.forked_trials);
  json.EndObject();

  json.BeginArray("per_target");
  for (const TargetSummary& summary : report.per_target) {
    json.BeginObject();
    json.Field("target", FaultTargetName(summary.target));
    json.Field("trials", summary.trials);
    AppendOutcomeCounts(json, summary.counts);
    // AVF-style rates: how often an upset in this structure mattered at all,
    // and how often it silently corrupted the architectural outcome.
    const double trials = summary.trials != 0 ? static_cast<double>(summary.trials) : 1.0;
    json.Field("vulnerability",
               static_cast<double>(summary.trials -
                                   summary.counts[static_cast<size_t>(TrialOutcome::kMasked)]) /
                   trials);
    json.Field("sdc_rate",
               static_cast<double>(summary.counts[static_cast<size_t>(TrialOutcome::kSdc)]) /
                   trials);
    json.BeginObject("detect_latency");
    summary.detect_latency.AppendJson(json);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();

  json.BeginArray("sdc");
  for (const TrialRecord& record : report.sdcs) {
    AppendTrialRecordJson(json, record);
  }
  json.EndArray();

  if (report.options.collect_trial_records) {
    json.BeginArray("trials");
    for (const TrialRecord& record : report.trials) {
      AppendTrialRecordJson(json, record);
    }
    json.EndArray();
  }

  json.EndObject();
  out << "\n";
}

void WriteCampaignText(const CampaignReport& report, std::ostream& out) {
  uint64_t total = 0;
  for (const uint64_t count : report.counts) {
    total += count;
  }
  out << StrFormat(
      "campaign: %llu trials over cycles [%llu, %llu] (golden: %llu cycles, exit %u)\n",
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(report.cycle_lo),
      static_cast<unsigned long long>(report.cycle_hi),
      static_cast<unsigned long long>(report.golden.cycles), report.golden.exit_code);
  out << "  ";
  for (size_t i = 0; i < kNumTrialOutcomes; ++i) {
    out << StrFormat("%s=%llu ", TrialOutcomeName(static_cast<TrialOutcome>(i)),
                     static_cast<unsigned long long>(report.counts[i]));
  }
  out << StrFormat("(forked %llu)\n", static_cast<unsigned long long>(report.forked_trials));
  for (const TargetSummary& summary : report.per_target) {
    if (summary.trials == 0) {
      continue;
    }
    const double trials = static_cast<double>(summary.trials);
    out << StrFormat(
        "  %-9s  trials=%-5llu vulnerability=%.3f sdc_rate=%.3f\n",
        FaultTargetName(summary.target), static_cast<unsigned long long>(summary.trials),
        static_cast<double>(summary.trials -
                            summary.counts[static_cast<size_t>(TrialOutcome::kMasked)]) /
            trials,
        static_cast<double>(summary.counts[static_cast<size_t>(TrialOutcome::kSdc)]) / trials);
  }
  for (const TrialRecord& record : report.sdcs) {
    out << StrFormat("  SDC trial %llu: %s%s%s\n",
                     static_cast<unsigned long long>(record.plan.index),
                     record.plan.spec.text.c_str(),
                     record.repro_dir.empty() ? "" : " -> ",
                     record.repro_dir.c_str());
  }
}

}  // namespace msim
