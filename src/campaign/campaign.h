// Differential fault-injection campaigns (docs/robustness.md "Fault
// campaigns").
//
// A campaign measures the paper's resilience story with numbers instead of
// one hand-written --inject spec at a time: enumerate a deterministic fault
// space (target structure x location x bit x injection cycle), run one golden
// reference execution, then run one trial per sampled fault and classify each
// trial against the golden run. The classifier's taxonomy:
//
//   masked               the fault never became architecturally visible —
//                        same final registers, exit code and console bytes,
//                        and no machine check fired;
//   detected-recovered   a machine check fired and the delegated recovery
//                        mroutine (scrub-and-retry) restored the golden
//                        outcome;
//   detected-fatal       a machine check fired and stopped the machine
//                        (undelegated or double machine check) — loud, safe;
//   sdc                  silent data corruption: the final architectural
//                        state differs from golden without the machine
//                        stopping. The headline failure class;
//   hang                 the trial neither halted nor died within
//                        golden_cycles * hang_factor;
//   crash                the simulation died fatally for a reason other than
//                        a machine check (e.g. an illegal instruction decoded
//                        from a corrupted code word in a --no-parity run).
//
// Determinism contract: a campaign is a pure function of (guest, CoreConfig,
// CampaignOptions). Trials fork from in-memory mid-run snapshots of the
// golden execution instead of cold-starting; because snapshots are byte-exact
// and campaign fault specs are fully pinned (cycle, location and bit all
// chosen up front by the seeded planner — FaultEngine::Apply draws no RNG),
// a forked trial is byte-identical to a cold-started one (campaign_test
// proves it), and campaign.json is byte-identical across runs. No wall-clock
// value appears anywhere in the report.
#ifndef MSIM_CAMPAIGN_CAMPAIGN_H_
#define MSIM_CAMPAIGN_CAMPAIGN_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "cpu/config.h"
#include "fault/fault.h"
#include "snap/diverge.h"
#include "support/result.h"
#include "trace/histogram.h"

namespace msim {

class Core;
class MetalSystem;

// The architecturally visible outcome of one complete execution: what a
// program's user could observe. `arch_digest` folds the final register file,
// halt/exit state and console bytes — deliberately NOT cycles, instret or
// machine-check counts, so a scrub-and-retry recovery that replays a few
// instructions still digests equal to golden. `state_digest` is the full
// Core::StateDigest (DRAM included) for byte-identity assertions.
struct ArchOutcome {
  bool halted = false;
  bool fatal = false;
  uint32_t exit_code = 0;
  uint64_t cycles = 0;
  uint64_t instret = 0;
  uint64_t machine_checks = 0;
  uint64_t parity_errors = 0;
  uint64_t words_scrubbed = 0;
  std::string console;
  std::string fatal_message;
  uint64_t arch_digest = 0;
  uint64_t state_digest = 0;
};

// FNV-1a over x1..x31, the halt/fatal/exit state and the console byte stream.
// (Non-const only because the console/MRAM accessors are; reads everything.)
uint64_t ArchitecturalDigest(Core& core);

// Snapshots the outcome of a finished (or stopped) core.
ArchOutcome CaptureArchOutcome(Core& core);

enum class TrialOutcome : uint32_t {
  kMasked = 0,
  kDetectedRecovered = 1,
  kDetectedFatal = 2,
  kSdc = 3,
  kHang = 4,
  kCrash = 5,
};
inline constexpr size_t kNumTrialOutcomes = 6;
const char* TrialOutcomeName(TrialOutcome outcome);

// Pure classification of a trial against the golden outcome (taxonomy above).
// A trial whose architectural digest differs from golden is an SDC even when
// a machine check also fired — corruption that escapes into the final state
// is a recovery bug, and hiding it under "detected" would mask exactly the
// failures a campaign exists to find.
TrialOutcome ClassifyTrial(const ArchOutcome& golden, const ArchOutcome& trial);

// A file copied into every SDC repro directory (self-containment).
struct ReproFile {
  std::string name;
  std::string contents;
};

struct CampaignOptions {
  // Fault space. Targets are swept round-robin; injection cycles are
  // stratified per target over the golden run's live cycle range [1, C-1]
  // so every region of the execution is sampled.
  std::vector<FaultTarget> targets;
  uint64_t trials = 200;
  uint64_t seed = 0;

  // Cap on the per-target location universe: sample locations only from the
  // first `max_location` words / registers / entries / lines (0 = the full
  // structure). Focusing the space on the guest's live state is how a small
  // trial budget gets meaningful per-structure rates — uniform sampling over
  // a mostly-idle 2048-word MRAM data segment mostly measures dead space.
  uint32_t max_location = 0;

  // Golden-run snapshot forking: `snapshots` evenly spaced in-memory fork
  // points (0 disables; trials then cold-start, byte-identically).
  uint32_t snapshots = 8;
  bool use_forks = true;

  // A trial that has neither halted nor died by golden_cycles * hang_factor
  // is classified kHang.
  uint64_t hang_factor = 4;

  // Golden-run cycle budget; 0 = CoreConfig::default_max_cycles. The golden
  // run must halt cleanly within it.
  uint64_t max_cycles = 0;

  // Include the per-trial records array in campaign.json.
  bool collect_trial_records = false;

  // Pinpoint every SDC with a cycle-granularity lockstep rerun (clean vs.
  // injected) — exact first-divergence cycle and component list.
  bool lockstep_sdc = true;

  // SDC repro harvesting: when non-empty, every SDC gets a self-contained
  // directory <out_dir>/sdc-<trial> with the guest sources, the spec, the
  // divergence report and a repro.sh replaying the corruption under
  // `msim replay`. Empty disables harvesting.
  std::string out_dir;
  std::vector<ReproFile> repro_files;
  // msim arguments identifying the guest inside the repro dir, e.g.
  // "program.s --mcode mcode.s --no-parity"; repro.sh appends the replay
  // flags and the trial's --b-inject spec.
  std::string repro_msim_args;
};

// One planned trial: a fully pinned one-shot fault spec plus bookkeeping.
struct TrialPlan {
  uint64_t index = 0;
  FaultSpec spec;
};

struct TrialRecord {
  TrialPlan plan;
  TrialOutcome outcome = TrialOutcome::kMasked;
  ArchOutcome result;
  bool forked = false;        // started from a golden snapshot
  uint64_t fork_cycle = 0;
  bool detected = false;      // a machine check fired during the trial
  uint64_t detect_cycle = 0;
  uint64_t detect_latency = 0;  // detect_cycle - injection cycle
  std::string repro_dir;      // relative to out_dir; SDC trials only
  bool has_divergence = false;
  DivergenceReport divergence;  // SDC lockstep pinpoint, when enabled
};

// Per-structure aggregation (AVF-style): how vulnerable each target is.
struct TargetSummary {
  FaultTarget target = FaultTarget::kMramCode;
  uint64_t trials = 0;
  std::array<uint64_t, kNumTrialOutcomes> counts{};
  Histogram detect_latency;  // cycles from injection to machine check
};

struct CampaignReport {
  CoreConfig config;
  CampaignOptions options;
  ArchOutcome golden;
  uint64_t cycle_lo = 0;  // sampled injection-cycle range
  uint64_t cycle_hi = 0;
  std::array<uint64_t, kNumTrialOutcomes> counts{};
  uint64_t forked_trials = 0;
  std::vector<TargetSummary> per_target;
  std::vector<TrialRecord> sdcs;    // full records for every SDC
  std::vector<TrialRecord> trials;  // all records, when collect_trial_records
};

// The campaign engine. `setup` configures a fresh MetalSystem (mcode,
// delegation, program) and is invoked for the golden run, every trial and
// every lockstep rerun — it must be deterministic.
class CampaignEngine {
 public:
  using SystemSetup = std::function<Status(MetalSystem&)>;

  CampaignEngine(const CoreConfig& config, SystemSetup setup, CampaignOptions options);
  ~CampaignEngine();

  const CampaignOptions& options() const { return options_; }
  const CoreConfig& config() const { return config_; }
  const ArchOutcome& golden() const { return golden_; }
  uint64_t trial_budget() const;  // golden cycles * hang_factor

  // Runs the golden reference execution (which must halt cleanly) and
  // captures the evenly spaced fork snapshots. Idempotent.
  Status Prepare();

  // Seeded stratified sampling of the fault space. Pure given the options
  // and the golden cycle count; requires Prepare().
  std::vector<TrialPlan> PlanTrials() const;

  // Runs one trial: fork (or cold-start when `allow_fork` is false or no
  // snapshot precedes the injection), inject, run to halt or budget,
  // classify. Requires Prepare().
  Result<TrialRecord> RunTrial(const TrialPlan& plan, bool allow_fork = true);

  // Cycle-lockstep rerun of a trial against a clean twin; pinpoints the
  // first divergent cycle and components (SDC post-processing).
  Result<DivergenceReport> PinpointDivergence(const TrialPlan& plan);

 private:
  Result<std::unique_ptr<MetalSystem>> BuildSystem() const;

  CoreConfig config_;
  SystemSetup setup_;
  CampaignOptions options_;
  bool prepared_ = false;
  ArchOutcome golden_;
  // Fork points: (cycle, snapshot bytes), ascending by cycle.
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> snapshots_;
};

// Runs the full campaign: Prepare, plan, every trial, aggregation, SDC
// lockstep pinpointing and repro harvesting.
Result<CampaignReport> RunCampaign(CampaignEngine& engine);

// Deterministic, wall-clock-free JSON export (byte-identical across runs).
void WriteCampaignJson(const CampaignReport& report, std::ostream& out);

// One-paragraph human summary for stderr.
void WriteCampaignText(const CampaignReport& report, std::ostream& out);

}  // namespace msim

#endif  // MSIM_CAMPAIGN_CAMPAIGN_H_
