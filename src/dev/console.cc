// ConsoleDevice is header-only; this file anchors it in the library.
#include "dev/console.h"

namespace msim {}  // namespace msim
