// Interrupt controller.
//
// Devices raise lines; the CPU samples `pending() & IENABLE` at instruction
// boundaries (never in Metal mode — mroutines are non-interruptible, paper
// §2.1) and vectors into the delegated mroutine. Handlers acknowledge lines
// through the W1C ack register.
//
// MMIO layout (word registers):
//   +0  PENDING (RO)   bitmap of raised lines
//   +4  RAISE   (WO)   set bits raise lines (software interrupts)
//   +8  ACK     (W1C)  clear raised lines
#ifndef MSIM_DEV_INTC_H_
#define MSIM_DEV_INTC_H_

#include <cstdint>

#include "mem/bus.h"
#include "snap/snapstream.h"

namespace msim {

class InterruptController : public MmioDevice {
 public:
  static constexpr uint32_t kDefaultBase = 0xF0000000u;

  const char* name() const override { return "intc"; }
  uint32_t size() const override { return 0x1000; }

  uint32_t Read32(uint32_t offset) override {
    return offset == 0 ? pending_ : 0;
  }

  void Write32(uint32_t offset, uint32_t value) override {
    if (offset == 4) {
      pending_ |= value;
    } else if (offset == 8) {
      pending_ &= ~value;
    }
  }

  void Raise(uint32_t line) { pending_ |= 1u << (line & 31); }
  void Clear(uint32_t line) { pending_ &= ~(1u << (line & 31)); }
  uint32_t pending() const { return pending_; }

  // Checkpoint/restore (src/snap).
  void SaveState(SnapWriter& w) const { w.U32(pending_); }
  Status RestoreState(SnapReader& r) {
    pending_ = r.U32();
    return r.ToStatus("intc");
  }

 private:
  uint32_t pending_ = 0;
};

}  // namespace msim

#endif  // MSIM_DEV_INTC_H_
