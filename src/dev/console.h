// Console output device: the simulated program's stdout.
//
// MMIO layout (word registers):
//   +0  PUTC (WO)  low byte appended to the output buffer
//   +4  EXIT (WO)  convenience exit code latch (host-readable)
#ifndef MSIM_DEV_CONSOLE_H_
#define MSIM_DEV_CONSOLE_H_

#include <cstdint>
#include <string>

#include "mem/bus.h"
#include "snap/snapstream.h"

namespace msim {

class ConsoleDevice : public MmioDevice {
 public:
  static constexpr uint32_t kDefaultBase = 0xF0003000u;

  const char* name() const override { return "console"; }
  uint32_t size() const override { return 0x1000; }

  uint32_t Read32(uint32_t offset) override { return offset == 4 ? exit_code_ : 0; }

  void Write32(uint32_t offset, uint32_t value) override {
    if (offset == 0) {
      output_.push_back(static_cast<char>(value & 0xFF));
    } else if (offset == 4) {
      exit_code_ = value;
    }
  }

  const std::string& output() const { return output_; }
  void ClearOutput() { output_.clear(); }

  // Checkpoint/restore (src/snap). The output buffer is part of the image so
  // a restored run reproduces the straight run's console output verbatim.
  void SaveState(SnapWriter& w) const {
    w.Str(output_);
    w.U32(exit_code_);
  }
  Status RestoreState(SnapReader& r) {
    output_ = r.Str();
    exit_code_ = r.U32();
    return r.ToStatus("console");
  }

 private:
  std::string output_;
  uint32_t exit_code_ = 0;
};

}  // namespace msim

#endif  // MSIM_DEV_CONSOLE_H_
