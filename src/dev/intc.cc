// InterruptController is header-only; this file anchors it in the library.
#include "dev/intc.h"

namespace msim {}  // namespace msim
