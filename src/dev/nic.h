// Simulated network interface.
//
// Stands in for the NIC hardware that motivates user-level interrupts (paper
// §3.4: DPDK/SPDK poll devices from user mode, burning cores; with user-level
// interrupts the device notifies the process directly). The host test/bench
// schedules packet arrivals at absolute cycle times; on arrival the device
// queues the packet and raises kIrqNic.
//
// MMIO layout (word registers):
//   +0   RX_COUNT (RO)  packets currently queued
//   +4   RX_LEN   (RO)  length in bytes of the head packet (0 if none)
//   +8   RX_POP   (RO)  reading pops and returns the next word of the head
//                       packet; after the last word the packet is dequeued
//   +12  RX_DROP  (WO)  writing drops the head packet
#ifndef MSIM_DEV_NIC_H_
#define MSIM_DEV_NIC_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "cpu/trap.h"
#include "dev/intc.h"
#include "mem/bus.h"
#include "support/result.h"

namespace msim {

class SnapWriter;
class SnapReader;

class NicDevice : public MmioDevice {
 public:
  static constexpr uint32_t kDefaultBase = 0xF0002000u;

  const char* name() const override { return "nic"; }
  uint32_t size() const override { return 0x1000; }

  uint32_t Read32(uint32_t offset) override;
  void Write32(uint32_t offset, uint32_t value) override;
  void Tick(uint64_t cycle, InterruptController& intc) override;
  uint64_t NextEventCycle(uint64_t cycle) const override;

  // Host API: deliver `payload` at absolute cycle `arrival_cycle`.
  void SchedulePacket(uint64_t arrival_cycle, std::vector<uint8_t> payload);

  uint32_t rx_queued() const { return static_cast<uint32_t>(rx_queue_.size()); }
  uint64_t packets_delivered() const { return packets_delivered_; }

  // Checkpoint/restore (src/snap): both the not-yet-arrived schedule and the
  // queued packets, so a restored run sees the same future arrivals.
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

 private:
  struct Pending {
    uint64_t arrival_cycle;
    std::vector<uint8_t> payload;
  };

  void PopHead();

  std::deque<Pending> scheduled_;
  std::deque<std::vector<uint8_t>> rx_queue_;
  uint32_t head_offset_ = 0;
  uint64_t packets_delivered_ = 0;
};

}  // namespace msim

#endif  // MSIM_DEV_NIC_H_
