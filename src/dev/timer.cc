#include "dev/timer.h"

#include "snap/snapstream.h"

namespace msim {

uint32_t TimerDevice::Read32(uint32_t offset) {
  switch (offset) {
    case 0:
      return static_cast<uint32_t>(count_);
    case 4:
      return compare_;
    case 8:
      return enabled_ ? 1u : 0u;
    case 12:
      return interval_;
    default:
      return 0;
  }
}

void TimerDevice::Write32(uint32_t offset, uint32_t value) {
  switch (offset) {
    case 4:
      compare_ = value;
      armed_ = true;
      break;
    case 8:
      enabled_ = (value & 1) != 0;
      break;
    case 12:
      interval_ = value;
      break;
    default:
      break;
  }
}

void TimerDevice::Tick(uint64_t cycle, InterruptController& intc) {
  count_ = cycle;
  if (!enabled_ || !armed_) {
    return;
  }
  if (static_cast<uint32_t>(count_) >= compare_) {
    intc.Raise(kIrqTimer);
    if (interval_ != 0) {
      compare_ += interval_;
    } else {
      armed_ = false;
    }
  }
}

uint64_t TimerDevice::NextEventCycle(uint64_t cycle) const {
  if (!enabled_ || !armed_) {
    return kNoPendingEvent;
  }
  // Tick(c) fires when (uint32_t)c >= compare_; COUNT is the low 32 bits of
  // the cycle counter, so the next firing cycle is reached by climbing the
  // 32-bit distance from the next cycle's COUNT value to COMPARE.
  const uint32_t next_count = static_cast<uint32_t>(cycle) + 1;
  if (next_count >= compare_) {
    return cycle + 1;
  }
  return cycle + 1 + (compare_ - next_count);
}

void TimerDevice::SaveState(SnapWriter& w) const {
  w.U64(count_);
  w.U32(compare_);
  w.U32(interval_);
  w.Bool(enabled_);
  w.Bool(armed_);
}

Status TimerDevice::RestoreState(SnapReader& r) {
  count_ = r.U64();
  compare_ = r.U32();
  interval_ = r.U32();
  enabled_ = r.Bool();
  armed_ = r.Bool();
  return r.ToStatus("timer");
}

}  // namespace msim
