#include "dev/nic.h"

#include <algorithm>

#include "snap/snapstream.h"

namespace msim {

uint32_t NicDevice::Read32(uint32_t offset) {
  switch (offset) {
    case 0:
      return rx_queued();
    case 4:
      return rx_queue_.empty() ? 0 : static_cast<uint32_t>(rx_queue_.front().size());
    case 8: {
      if (rx_queue_.empty()) {
        return 0;
      }
      const std::vector<uint8_t>& head = rx_queue_.front();
      uint32_t word = 0;
      for (unsigned i = 0; i < 4 && head_offset_ + i < head.size(); ++i) {
        word |= static_cast<uint32_t>(head[head_offset_ + i]) << (8 * i);
      }
      head_offset_ += 4;
      if (head_offset_ >= head.size()) {
        PopHead();
      }
      return word;
    }
    default:
      return 0;
  }
}

void NicDevice::Write32(uint32_t offset, uint32_t value) {
  (void)value;
  if (offset == 12 && !rx_queue_.empty()) {
    PopHead();
  }
}

void NicDevice::Tick(uint64_t cycle, InterruptController& intc) {
  while (!scheduled_.empty() && scheduled_.front().arrival_cycle <= cycle) {
    rx_queue_.push_back(std::move(scheduled_.front().payload));
    scheduled_.pop_front();
    ++packets_delivered_;
    intc.Raise(kIrqNic);
  }
}

void NicDevice::SchedulePacket(uint64_t arrival_cycle, std::vector<uint8_t> payload) {
  scheduled_.push_back({arrival_cycle, std::move(payload)});
  std::sort(scheduled_.begin(), scheduled_.end(),
            [](const Pending& a, const Pending& b) { return a.arrival_cycle < b.arrival_cycle; });
}

void NicDevice::PopHead() {
  rx_queue_.pop_front();
  head_offset_ = 0;
}

uint64_t NicDevice::NextEventCycle(uint64_t cycle) const {
  if (scheduled_.empty()) {
    return kNoPendingEvent;
  }
  // scheduled_ is kept sorted by arrival; anything already due is delivered
  // by the next Tick.
  return std::max(cycle + 1, scheduled_.front().arrival_cycle);
}

void NicDevice::SaveState(SnapWriter& w) const {
  w.U64(static_cast<uint64_t>(scheduled_.size()));
  for (const Pending& pending : scheduled_) {
    w.U64(pending.arrival_cycle);
    w.Bytes(pending.payload);
  }
  w.U64(static_cast<uint64_t>(rx_queue_.size()));
  for (const std::vector<uint8_t>& packet : rx_queue_) {
    w.Bytes(packet);
  }
  w.U32(head_offset_);
  w.U64(packets_delivered_);
}

Status NicDevice::RestoreState(SnapReader& r) {
  scheduled_.clear();
  rx_queue_.clear();
  const uint64_t num_scheduled = r.U64();
  MSIM_RETURN_IF_ERROR(r.ToStatus("nic schedule"));
  for (uint64_t i = 0; i < num_scheduled; ++i) {
    Pending pending;
    pending.arrival_cycle = r.U64();
    pending.payload = r.Bytes();
    MSIM_RETURN_IF_ERROR(r.ToStatus("nic scheduled packet"));
    scheduled_.push_back(std::move(pending));
  }
  const uint64_t num_queued = r.U64();
  MSIM_RETURN_IF_ERROR(r.ToStatus("nic rx queue"));
  for (uint64_t i = 0; i < num_queued; ++i) {
    rx_queue_.push_back(r.Bytes());
    MSIM_RETURN_IF_ERROR(r.ToStatus("nic rx packet"));
  }
  head_offset_ = r.U32();
  packets_delivered_ = r.U64();
  return r.ToStatus("nic");
}

}  // namespace msim
