#include "dev/nic.h"

#include <algorithm>

namespace msim {

uint32_t NicDevice::Read32(uint32_t offset) {
  switch (offset) {
    case 0:
      return rx_queued();
    case 4:
      return rx_queue_.empty() ? 0 : static_cast<uint32_t>(rx_queue_.front().size());
    case 8: {
      if (rx_queue_.empty()) {
        return 0;
      }
      const std::vector<uint8_t>& head = rx_queue_.front();
      uint32_t word = 0;
      for (unsigned i = 0; i < 4 && head_offset_ + i < head.size(); ++i) {
        word |= static_cast<uint32_t>(head[head_offset_ + i]) << (8 * i);
      }
      head_offset_ += 4;
      if (head_offset_ >= head.size()) {
        PopHead();
      }
      return word;
    }
    default:
      return 0;
  }
}

void NicDevice::Write32(uint32_t offset, uint32_t value) {
  (void)value;
  if (offset == 12 && !rx_queue_.empty()) {
    PopHead();
  }
}

void NicDevice::Tick(uint64_t cycle, InterruptController& intc) {
  while (!scheduled_.empty() && scheduled_.front().arrival_cycle <= cycle) {
    rx_queue_.push_back(std::move(scheduled_.front().payload));
    scheduled_.pop_front();
    ++packets_delivered_;
    intc.Raise(kIrqNic);
  }
}

void NicDevice::SchedulePacket(uint64_t arrival_cycle, std::vector<uint8_t> payload) {
  scheduled_.push_back({arrival_cycle, std::move(payload)});
  std::sort(scheduled_.begin(), scheduled_.end(),
            [](const Pending& a, const Pending& b) { return a.arrival_cycle < b.arrival_cycle; });
}

void NicDevice::PopHead() {
  rx_queue_.pop_front();
  head_offset_ = 0;
}

}  // namespace msim
