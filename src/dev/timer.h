// Programmable cycle timer raising kIrqTimer.
//
// MMIO layout (word registers):
//   +0  COUNT   (RO)  cycles since reset (low 32 bits)
//   +4  COMPARE (RW)  raise the interrupt when COUNT >= COMPARE
//   +8  CTRL    (RW)  bit0 = enable; writing COMPARE re-arms
//   +12 INTERVAL(RW)  if non-zero, periodic: COMPARE += INTERVAL on fire
#ifndef MSIM_DEV_TIMER_H_
#define MSIM_DEV_TIMER_H_

#include <cstdint>

#include "cpu/trap.h"
#include "dev/intc.h"
#include "mem/bus.h"
#include "support/result.h"

namespace msim {

class SnapWriter;
class SnapReader;

class TimerDevice : public MmioDevice {
 public:
  static constexpr uint32_t kDefaultBase = 0xF0001000u;

  const char* name() const override { return "timer"; }
  uint32_t size() const override { return 0x1000; }

  uint32_t Read32(uint32_t offset) override;
  void Write32(uint32_t offset, uint32_t value) override;
  void Tick(uint64_t cycle, InterruptController& intc) override;
  uint64_t NextEventCycle(uint64_t cycle) const override;

  // Checkpoint/restore (src/snap).
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

 private:
  uint64_t count_ = 0;
  uint32_t compare_ = 0;
  uint32_t interval_ = 0;
  bool enabled_ = false;
  bool armed_ = false;
};

}  // namespace msim

#endif  // MSIM_DEV_TIMER_H_
