// Flight recorder: a fixed-size, deterministic ring of the last K
// architecturally significant trace events.
//
// Unlike RingBufferSink (which records everything and is sized for offline
// export), the flight recorder filters to retired instructions, Metal
// transitions and fault events, and keeps a small bounded window — the
// "what led up to this" record embedded in crash dumps (src/fault) and
// snapshots (src/snap). The ring is part of the deterministic machine
// surface: SaveState/RestoreState serialize it fully, so a restored run's
// recorder — and every crash dump derived from it — is byte-identical to the
// straight run's.
#ifndef MSIM_TRACE_FLIGHT_H_
#define MSIM_TRACE_FLIGHT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/result.h"
#include "trace/trace.h"

namespace msim {

class JsonWriter;
class SnapWriter;
class SnapReader;

class FlightRecorder : public TraceSink {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  // True for the event kinds the recorder keeps: retires, transitions
  // (menter/mexit/chain folds), trap/interrupt/intercept deliveries, fault
  // injections and machine checks. Cache/TLB misses, stalls and flushes are
  // high-rate microarchitectural noise and are filtered out.
  static bool Records(TraceEventKind kind);

  void OnEvent(const TraceEvent& event) override;

  // Recorded events, oldest first.
  std::vector<TraceEvent> Events() const;
  size_t capacity() const { return capacity_; }
  uint64_t total() const { return total_; }     // events accepted
  uint64_t dropped() const { return dropped_; } // accepted minus retained
  void Clear();

  // Appends capacity/total/dropped and an "events" array to an open object.
  void AppendJson(JsonWriter& json) const;

  // Checkpoint/restore (src/snap): the full ring, in order.
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

 private:
  std::vector<TraceEvent> buffer_;
  size_t capacity_;
  size_t next_ = 0;
  uint64_t total_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace msim

#endif  // MSIM_TRACE_FLIGHT_H_
