#include "trace/histogram.h"

#include <algorithm>
#include <cmath>

#include "snap/snapstream.h"
#include "trace/json.h"

namespace msim {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  // floor(log2(value)) + 1: value 1 -> bucket 1, [2,3] -> 2, [4,7] -> 3, ...
  return static_cast<size_t>(64 - __builtin_clzll(value));
}

uint64_t Histogram::BucketLow(size_t index) {
  if (index == 0) {
    return 0;
  }
  return 1ull << (index - 1);
}

uint64_t Histogram::BucketHigh(size_t index) {
  if (index == 0) {
    return 0;
  }
  if (index >= 64) {
    return ~0ull;
  }
  return (1ull << index) - 1;
}

void Histogram::Record(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Reset() { *this = Histogram(); }

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (size_t b = 0; b < kNumBuckets; ++b) {
    buckets_[b] += other.buckets_[b];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;  // every percentile of an empty histogram, p = 0/100 included
  }
  // The 0th percentile is the minimum by definition; the rank formula below
  // would instead interpolate INTO the lowest occupied bucket (rank is
  // clamped to 1). NaN lands here too: !(NaN > 0) — any comparison-based
  // clamp would otherwise turn it into an arbitrary in-range rank.
  if (!(p > 0.0)) {
    return static_cast<double>(min_);
  }
  if (p >= 100.0) {
    return static_cast<double>(max_);
  }
  // Rank of the target sample, 1-based; p is strictly inside (0, 100) here.
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(p / 100.0 * count_)));
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) {
      continue;
    }
    if (seen + buckets_[b] < target) {
      seen += buckets_[b];
      continue;
    }
    const double lo = static_cast<double>(BucketLow(b));
    const double hi = static_cast<double>(BucketHigh(b));
    const double frac =
        static_cast<double>(target - seen) / static_cast<double>(buckets_[b]);
    double value = lo + (hi - lo) * frac;
    value = std::min(value, static_cast<double>(max_));
    value = std::max(value, static_cast<double>(min_));
    return value;
  }
  return static_cast<double>(max_);  // unreachable when counts are consistent
}

void Histogram::AppendJson(JsonWriter& json) const {
  json.Field("count", count_);
  json.Field("sum", sum_);
  json.Field("min", min());
  json.Field("max", max_);
  json.Field("mean", count_ != 0 ? static_cast<double>(sum_) / count_ : 0.0);
  json.Field("p50", Percentile(50));
  json.Field("p90", Percentile(90));
  json.Field("p99", Percentile(99));
  json.BeginArray("buckets");
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) {
      continue;
    }
    json.BeginObject();
    json.Field("lo", BucketLow(b));
    json.Field("hi", BucketHigh(b));
    json.Field("n", buckets_[b]);
    json.EndObject();
  }
  json.EndArray();
}

void Histogram::SaveState(SnapWriter& w) const {
  for (const uint64_t bucket : buckets_) {
    w.U64(bucket);
  }
  w.U64(count_);
  w.U64(sum_);
  w.U64(min_);
  w.U64(max_);
}

Status Histogram::RestoreState(SnapReader& r) {
  for (uint64_t& bucket : buckets_) {
    bucket = r.U64();
  }
  count_ = r.U64();
  sum_ = r.U64();
  min_ = r.U64();
  max_ = r.U64();
  return r.ToStatus("histogram");
}

}  // namespace msim
