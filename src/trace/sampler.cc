#include "trace/sampler.h"

#include "trace/json.h"
#include "trace/metrics.h"

namespace msim {

void IntervalSampler::SampleAt(uint64_t cycle) {
  if (out_ == nullptr || registry_ == nullptr) {
    return;
  }
  JsonWriter json(*out_);
  json.BeginObject();
  json.Field("cycle", cycle);
  json.BeginObject("metrics");
  registry_->AppendJson(json);
  json.EndObject();
  json.BeginObject("histograms");
  registry_->AppendHistogramsJson(json);
  json.EndObject();
  json.EndObject();
  *out_ << "\n";
  ++samples_;
}

}  // namespace msim
