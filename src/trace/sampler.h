// IntervalSampler: streaming JSONL time-series snapshots of the metric
// registry.
//
// Fleet consumers (ROADMAP item 3) want per-session statistics they can tail
// while a simulation runs, not one dump at the end. The sampler writes one
// JSON object per line at every absolute-cycle multiple of the configured
// interval:
//
//   {"cycle": 1000, "metrics": {...}, "histograms": {...}}
//
// Marks are absolute machine cycles (cycle % every == 0), the same contract
// as checkpoints (docs/determinism.md): a run restored from a mid-execution
// snapshot samples at the same marks the straight run did from that point on,
// and two identical runs produce byte-identical JSONL.
#ifndef MSIM_TRACE_SAMPLER_H_
#define MSIM_TRACE_SAMPLER_H_

#include <cstdint>
#include <ostream>

namespace msim {

class MetricRegistry;

class IntervalSampler {
 public:
  // `every` must be >= 1 (the CLI rejects 0). The registry and stream are
  // non-owning and must outlive the sampler.
  IntervalSampler(uint64_t every, const MetricRegistry* registry, std::ostream* out)
      : every_(every == 0 ? 1 : every), registry_(registry), out_(out) {}

  uint64_t every() const { return every_; }
  uint64_t samples() const { return samples_; }

  // First sampling mark strictly after `cycle`.
  uint64_t NextMark(uint64_t cycle) const { return (cycle / every_ + 1) * every_; }

  // Writes one JSONL line for the registry's current state, stamped `cycle`.
  void SampleAt(uint64_t cycle);

 private:
  uint64_t every_;
  const MetricRegistry* registry_;
  std::ostream* out_;
  uint64_t samples_ = 0;
};

}  // namespace msim

#endif  // MSIM_TRACE_SAMPLER_H_
