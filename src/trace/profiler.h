// Per-mroutine profiler: attributes cycles and retired instructions to MRAM
// entries by consuming the structured trace stream (trace/trace.h).
//
// Attribution model. The committed mode becomes Metal exactly when the core
// emits kMenter / kTrap / kInterrupt, and reverts on kMexit; CoreStats
// counts a cycle as a Metal cycle for every cycle strictly after the entering
// event up to and including the cycle of the exiting event. The profiler
// mirrors that: a span entered at cycle C and exited at cycle M contributes
// (M - C) cycles to its entry, so the per-entry cycle attribution sums to
// CoreStats.metal_cycles when the profiler observes the whole run (decode-
// stage transition chains commit enter and exit at the same cycle and thus
// contribute zero, matching the hardware's zero-bubble path).
#ifndef MSIM_TRACE_PROFILER_H_
#define MSIM_TRACE_PROFILER_H_

#include <array>
#include <cstdint>
#include <ostream>

#include "isa/isa.h"
#include "support/result.h"
#include "trace/trace.h"

namespace msim {

class JsonWriter;
class SnapWriter;
class SnapReader;

class MroutineProfiler : public TraceSink {
 public:
  struct EntryProfile {
    uint64_t enters = 0;       // menter invocations (fast or slow path)
    uint64_t trap_enters = 0;  // deliveries via exception/interrupt/intercept
    uint64_t instret = 0;      // Metal instructions retired under this entry
    uint64_t cycles = 0;       // Metal cycles attributed to this entry

    uint64_t total_enters() const { return enters + trap_enters; }
  };

  void OnEvent(const TraceEvent& event) override;

  // Closes a span still open when the simulation stopped (e.g. halted inside
  // an mroutine). Call with Core::cycle() after the run, before reporting.
  void Finalize(uint64_t final_cycle);

  const std::array<EntryProfile, kMaxMroutines>& entries() const { return entries_; }

  // Metal activity that could not be tied to an entry (profiler attached
  // mid-run, or ring-buffer style loss upstream).
  uint64_t unattributed_cycles() const { return unattributed_.cycles; }
  uint64_t unattributed_instret() const { return unattributed_.instret; }

  uint64_t total_metal_cycles() const;   // sum over entries + unattributed
  uint64_t total_metal_instret() const;
  uint64_t normal_instret() const { return normal_instret_; }
  uint64_t chain_folds() const { return chain_folds_; }

  // Paper-style breakdown (normal vs. Metal vs. per-entry), skipping entries
  // that were never entered. `total_cycles` scales the %cycles column.
  void WriteText(std::ostream& out, uint64_t total_cycles) const;

  // Appends {"entries": [...], "totals": {...}} members to an open object.
  void AppendJson(JsonWriter& json, uint64_t total_cycles) const;

  // Checkpoint/restore (src/snap): per-entry counters and the open-span
  // bookkeeping, so a restored run's profile matches the straight run's.
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

 private:
  void OpenSpan(uint32_t entry, uint64_t cycle, bool via_trap);
  void CloseSpan(uint64_t cycle);

  std::array<EntryProfile, kMaxMroutines> entries_{};
  EntryProfile unattributed_{};
  uint64_t normal_instret_ = 0;
  uint64_t chain_folds_ = 0;

  bool in_metal_ = false;
  bool current_known_ = false;  // false: attribute the open span to unattributed_
  uint32_t current_entry_ = 0;
  uint64_t span_start_ = 0;
  // The slow-path mexit instruction retires (as a Metal instruction) after
  // its own exit event closed the span; attribute such trailing retires to
  // the entry that just ended.
  bool last_known_ = false;
  uint32_t last_entry_ = 0;
};

}  // namespace msim

#endif  // MSIM_TRACE_PROFILER_H_
