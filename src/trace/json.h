// Minimal JSON emission helpers for the observability layer.
//
// The simulator has no external dependencies, so the stats/trace exporters
// build their JSON with this small streaming writer instead of a full
// serialization library. The writer tracks nesting and comma placement; the
// caller is responsible for pairing Begin*/End* calls. `JsonLooksValid` is a
// strict structural validator used by tests and tools to check exported files
// without third-party parsers.
#ifndef MSIM_TRACE_JSON_H_
#define MSIM_TRACE_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace msim {

// Escapes `text` per RFC 8259: quotes, backslashes and every control
// character in U+0000..U+001F (shorthand escapes where they exist, \u00XX
// otherwise). Bytes >= 0x20 pass through unchanged, so UTF-8 sequences
// survive round trips byte-for-byte.
std::string JsonEscape(std::string_view text);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  // Containers. The Begin* overloads taking a key are for use inside objects.
  void BeginObject();
  void BeginObject(std::string_view key);
  void EndObject();
  void BeginArray();
  void BeginArray(std::string_view key);
  void EndArray();

  // Scalar members (inside an object).
  void Field(std::string_view key, std::string_view value);
  void Field(std::string_view key, const char* value) {
    Field(key, std::string_view(value));
  }
  void Field(std::string_view key, uint64_t value);
  void Field(std::string_view key, int64_t value);
  void Field(std::string_view key, uint32_t value) {
    Field(key, static_cast<uint64_t>(value));
  }
  void Field(std::string_view key, int value) { Field(key, static_cast<int64_t>(value)); }
  // Doubles print with %.6g; non-finite values (inf/nan have no JSON literal)
  // emit null so the document stays parseable.
  void Field(std::string_view key, double value);
  void Field(std::string_view key, bool value);

  // Scalar elements (inside an array).
  void Value(std::string_view value);
  void Value(uint64_t value);

 private:
  void Separate();
  void Key(std::string_view key);

  std::ostream& out_;
  // One entry per open container: true once the first member was written.
  std::vector<bool> has_members_;
};

// Structural JSON validation (objects, arrays, strings, numbers, literals).
// Accepts exactly one top-level value surrounded by whitespace.
bool JsonLooksValid(std::string_view text);

}  // namespace msim

#endif  // MSIM_TRACE_JSON_H_
