#include "trace/metrics.h"

#include <algorithm>
#include <iomanip>

#include "support/strings.h"
#include "trace/histogram.h"
#include "trace/json.h"

namespace msim {

void MetricRegistry::Register(std::string component, std::string name, const uint64_t* counter,
                              std::string help) {
  Metric metric;
  metric.component = std::move(component);
  metric.name = std::move(name);
  metric.help = std::move(help);
  metric.counter = counter;
  metrics_.push_back(std::move(metric));
}

void MetricRegistry::RegisterFn(std::string component, std::string name,
                                std::function<uint64_t()> getter, std::string help) {
  Metric metric;
  metric.component = std::move(component);
  metric.name = std::move(name);
  metric.help = std::move(help);
  metric.getter = std::move(getter);
  metrics_.push_back(std::move(metric));
}

void MetricRegistry::RegisterHistogram(std::string component, std::string name,
                                       const Histogram* histogram, std::string help) {
  HistogramMetric metric;
  metric.component = std::move(component);
  metric.name = std::move(name);
  metric.help = std::move(help);
  metric.histogram = histogram;
  histograms_.push_back(std::move(metric));
}

const Histogram* MetricRegistry::FindHistogram(std::string_view component,
                                               std::string_view name) const {
  for (const HistogramMetric& metric : histograms_) {
    if (metric.component == component && metric.name == name) {
      return metric.histogram;
    }
  }
  return nullptr;
}

uint64_t MetricRegistry::Value(std::string_view component, std::string_view name,
                               bool* found) const {
  for (const Metric& metric : metrics_) {
    if (metric.component == component && metric.name == name) {
      if (found != nullptr) {
        *found = true;
      }
      return metric.value();
    }
  }
  if (found != nullptr) {
    *found = false;
  }
  return 0;
}

void MetricRegistry::WriteJson(std::ostream& out) const {
  JsonWriter json(out);
  json.BeginObject();
  AppendJson(json);
  json.EndObject();
}

void MetricRegistry::AppendJson(JsonWriter& json) const {
  // Group by component in first-seen order; registration clusters per
  // component, but re-scan for stragglers registered out of order.
  std::vector<std::string> emitted;
  for (const Metric& metric : metrics_) {
    if (std::find(emitted.begin(), emitted.end(), metric.component) != emitted.end()) {
      continue;
    }
    emitted.push_back(metric.component);
    json.BeginObject(metric.component);
    for (const Metric& member : metrics_) {
      if (member.component == metric.component) {
        json.Field(member.name, member.value());
      }
    }
    json.EndObject();
  }
}

void MetricRegistry::AppendHistogramsJson(JsonWriter& json) const {
  std::vector<std::string> emitted;
  for (const HistogramMetric& metric : histograms_) {
    if (std::find(emitted.begin(), emitted.end(), metric.component) != emitted.end()) {
      continue;
    }
    emitted.push_back(metric.component);
    json.BeginObject(metric.component);
    for (const HistogramMetric& member : histograms_) {
      if (member.component != metric.component || member.histogram->count() == 0) {
        continue;
      }
      json.BeginObject(member.name);
      member.histogram->AppendJson(json);
      json.EndObject();
    }
    json.EndObject();
  }
}

void MetricRegistry::WriteText(std::ostream& out) const {
  size_t width = 0;
  for (const Metric& metric : metrics_) {
    width = std::max(width, metric.component.size() + 1 + metric.name.size());
  }
  for (const Metric& metric : metrics_) {
    const std::string label = metric.component + "." + metric.name;
    out << std::left << std::setw(static_cast<int>(width) + 2) << label << std::right
        << std::setw(12) << metric.value() << "\n";
  }
  for (const HistogramMetric& metric : histograms_) {
    const Histogram& h = *metric.histogram;
    if (h.count() == 0) {
      continue;
    }
    out << metric.component << "." << metric.name
        << StrFormat("  count=%llu p50=%.1f p90=%.1f p99=%.1f max=%llu\n",
                     (unsigned long long)h.count(), h.Percentile(50), h.Percentile(90),
                     h.Percentile(99), (unsigned long long)h.max());
  }
}

}  // namespace msim
