#include "trace/span.h"

#include <algorithm>

#include "snap/snapstream.h"
#include "support/strings.h"
#include "trace/json.h"
#include "trace/metrics.h"

namespace msim {

const char* SpanClassName(SpanClass cls) {
  switch (cls) {
    case SpanClass::kMenter:
      return "menter";
    case SpanClass::kTrap:
      return "trap";
    case SpanClass::kInterrupt:
      return "interrupt";
    case SpanClass::kMachineCheck:
      return "machine_check";
    case SpanClass::kScrubRetry:
      return "scrub_retry";
    case SpanClass::kCount:
      break;
  }
  return "unknown";
}

SpanSink::SpanSink(size_t retain) : retain_(retain == 0 ? 1 : retain) {
  done_.reserve(std::min<size_t>(retain_, 256));
}

void SpanSink::Open(SpanClass cls, uint32_t code, uint32_t entry, uint64_t cycle,
                    uint64_t cause) {
  Span span;
  span.id = next_id_++;
  span.parent = open_.empty() ? 0 : open_.back().id;
  span.cause = cause;
  span.cls = cls;
  span.code = code;
  span.entry = entry;
  span.begin_cycle = cycle;
  open_.push_back(span);
  ++opened_;
}

void SpanSink::Close(uint64_t cycle, bool aborted) {
  Span span = open_.back();
  open_.pop_back();
  span.end_cycle = cycle;
  span.closed = true;
  span.aborted = aborted;
  if (aborted) {
    ++aborted_;
  } else {
    ++closed_;
    RecordLatency(span);
  }
  Retain(span);
}

void SpanSink::RecordLatency(const Span& span) {
  const uint64_t cycles = span.cycles();
  switch (span.cls) {
    case SpanClass::kMenter:
      menter_latency_.Record(cycles);
      break;
    case SpanClass::kTrap:
      trap_latency_[span.code % kNumExcCauses].Record(cycles);
      break;
    case SpanClass::kInterrupt:
      interrupt_latency_.Record(cycles);
      break;
    case SpanClass::kMachineCheck:
      machine_check_latency_.Record(cycles);
      break;
    case SpanClass::kScrubRetry:
      scrub_retry_latency_.Record(cycles);
      break;
    case SpanClass::kCount:
      break;
  }
  if (watchdog_budget_ != 0) {
    watchdog_margin_.Record(watchdog_budget_ > cycles ? watchdog_budget_ - cycles : 0);
  }
}

void SpanSink::Retain(const Span& span) {
  if (done_.size() < retain_) {
    done_.push_back(span);
    return;
  }
  done_[done_next_] = span;
  done_next_ = (done_next_ + 1) % retain_;
  ++retained_dropped_;
}

void SpanSink::OnEvent(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kMenter:
      Open(SpanClass::kMenter, event.arg0, event.arg0, event.cycle, /*cause=*/0);
      break;
    case TraceEventKind::kTrap:
      Open(SpanClass::kTrap, event.arg0, event.arg1, event.cycle, /*cause=*/0);
      break;
    case TraceEventKind::kInterrupt:
      Open(SpanClass::kInterrupt, event.arg0 & ~kInterruptCauseFlag, event.arg1, event.cycle,
           /*cause=*/0);
      break;
    case TraceEventKind::kMexit: {
      if (open_.empty()) {
        break;  // attached mid-run: exit without a recorded entry
      }
      const uint64_t ended = open_.back().id;
      Close(event.cycle, /*aborted=*/false);
      // arg1 bit 1: this exit ended a machine-check recovery AND resumed into
      // MRAM — the scrub-and-retry path. The retried mroutine runs without a
      // fresh delivery event, so open its span here, caused by the recovery.
      if ((event.arg1 & 2) != 0) {
        Open(SpanClass::kScrubRetry, event.pc, Span::kNoEntry, event.cycle, /*cause=*/ended);
        open_.back().code = event.arg0;  // MRAM resume (retry) address
      }
      break;
    }
    case TraceEventKind::kMachineCheck: {
      // The check aborts whatever was in service; the innermost aborted span
      // is the cause of the recovery episode that now begins.
      uint64_t cause = 0;
      if (!open_.empty()) {
        cause = open_.back().id;
        while (!open_.empty()) {
          Close(event.cycle, /*aborted=*/true);
        }
      }
      Open(SpanClass::kMachineCheck, event.arg0, Span::kNoEntry, event.cycle, cause);
      break;
    }
    default:
      break;  // retires, misses, stalls, folds: not span-delimiting
  }
}

void SpanSink::Finalize(uint64_t final_cycle) {
  while (!open_.empty()) {
    Close(final_cycle, /*aborted=*/true);
  }
}

void SpanSink::RegisterMetrics(MetricRegistry& registry) {
  registry.Register("span", "opened", &opened_, "service spans opened");
  registry.Register("span", "closed", &closed_, "spans closed by mexit");
  registry.Register("span", "aborted", &aborted_, "spans ended by machine check or end of run");
  registry.RegisterHistogram("latency", "menter", &menter_latency_,
                             "menter->mexit service cycles");
  for (uint32_t cause = 1; cause < kNumExcCauses; ++cause) {
    registry.RegisterHistogram(
        "latency", StrFormat("trap_%s", ExcCauseName(static_cast<ExcCause>(cause))),
        &trap_latency_[cause], "trap entry->resume service cycles");
  }
  registry.RegisterHistogram("latency", "interrupt", &interrupt_latency_,
                             "interrupt delivery->resume service cycles");
  registry.RegisterHistogram("latency", "machine_check", &machine_check_latency_,
                             "machine-check recovery cycles");
  registry.RegisterHistogram("latency", "scrub_retry", &scrub_retry_latency_,
                             "retried mroutine service cycles after recovery");
  registry.RegisterHistogram("latency", "watchdog_margin", &watchdog_margin_,
                             "cycles left under the watchdog budget per span");
}

std::vector<Span> SpanSink::Spans() const {
  std::vector<Span> out;
  out.reserve(done_.size());
  for (size_t i = 0; i < done_.size(); ++i) {
    out.push_back(done_[(done_next_ + i) % done_.size()]);
  }
  return out;
}

void SpanSink::AppendJson(JsonWriter& json) const {
  json.Field("opened", opened_);
  json.Field("closed", closed_);
  json.Field("aborted", aborted_);
  json.Field("retained_dropped", retained_dropped_);
  json.BeginArray("spans");
  for (const Span& span : Spans()) {
    json.BeginObject();
    json.Field("id", span.id);
    json.Field("class", SpanClassName(span.cls));
    json.Field("code", span.code);
    if (span.entry != Span::kNoEntry) {
      json.Field("entry", span.entry);
    }
    json.Field("begin", span.begin_cycle);
    json.Field("end", span.end_cycle);
    if (span.parent != 0) {
      json.Field("parent", span.parent);
    }
    if (span.cause != 0) {
      json.Field("cause", span.cause);
    }
    if (span.aborted) {
      json.Field("aborted", true);
    }
    json.EndObject();
  }
  json.EndArray();
}

namespace {
void SaveSpan(SnapWriter& w, const Span& span) {
  w.U64(span.id);
  w.U64(span.parent);
  w.U64(span.cause);
  w.U8(static_cast<uint8_t>(span.cls));
  w.U32(span.code);
  w.U32(span.entry);
  w.U64(span.begin_cycle);
  w.U64(span.end_cycle);
  w.Bool(span.closed);
  w.Bool(span.aborted);
}

Span RestoreSpan(SnapReader& r) {
  Span span;
  span.id = r.U64();
  span.parent = r.U64();
  span.cause = r.U64();
  span.cls = static_cast<SpanClass>(r.U8() % static_cast<uint8_t>(SpanClass::kCount));
  span.code = r.U32();
  span.entry = r.U32();
  span.begin_cycle = r.U64();
  span.end_cycle = r.U64();
  span.closed = r.Bool();
  span.aborted = r.Bool();
  return span;
}
}  // namespace

void SpanSink::SaveState(SnapWriter& w) const {
  w.U64(next_id_);
  w.U64(opened_);
  w.U64(closed_);
  w.U64(aborted_);
  w.U64(retained_dropped_);
  w.U64(watchdog_budget_);
  w.U64(static_cast<uint64_t>(open_.size()));
  for (const Span& span : open_) {
    SaveSpan(w, span);
  }
  for (const Histogram& h : trap_latency_) {
    h.SaveState(w);
  }
  interrupt_latency_.SaveState(w);
  menter_latency_.SaveState(w);
  machine_check_latency_.SaveState(w);
  scrub_retry_latency_.SaveState(w);
  watchdog_margin_.SaveState(w);
}

Status SpanSink::RestoreState(SnapReader& r) {
  next_id_ = r.U64();
  opened_ = r.U64();
  closed_ = r.U64();
  aborted_ = r.U64();
  retained_dropped_ = r.U64();
  watchdog_budget_ = r.U64();
  const uint64_t open_count = r.U64();
  if (open_count > 1024) {
    return InvalidArgument("span snapshot: implausible open-span depth");
  }
  open_.clear();
  for (uint64_t i = 0; i < open_count; ++i) {
    open_.push_back(RestoreSpan(r));
  }
  for (Histogram& h : trap_latency_) {
    MSIM_RETURN_IF_ERROR(h.RestoreState(r));
  }
  MSIM_RETURN_IF_ERROR(interrupt_latency_.RestoreState(r));
  MSIM_RETURN_IF_ERROR(menter_latency_.RestoreState(r));
  MSIM_RETURN_IF_ERROR(machine_check_latency_.RestoreState(r));
  MSIM_RETURN_IF_ERROR(scrub_retry_latency_.RestoreState(r));
  MSIM_RETURN_IF_ERROR(watchdog_margin_.RestoreState(r));
  // The retained ring restarts at restore (export state, not statistics).
  done_.clear();
  done_next_ = 0;
  return r.ToStatus("span sink");
}

// ---------------------------------------------------------------------------
// Span-aware Chrome trace export
// ---------------------------------------------------------------------------

namespace {

std::string SpanSliceName(const Span& span) {
  switch (span.cls) {
    case SpanClass::kMenter:
      return StrFormat("mroutine %u", span.entry);
    case SpanClass::kTrap:
      return StrFormat("trap %s -> entry %u",
                       ExcCauseName(static_cast<ExcCause>(span.code % kNumExcCauses)),
                       span.entry);
    case SpanClass::kInterrupt:
      return StrFormat("irq %u -> entry %u", span.code, span.entry);
    case SpanClass::kMachineCheck:
      return StrFormat("machine check (%s)",
                       McheckKindName(static_cast<McheckKind>(span.code)));
    case SpanClass::kScrubRetry:
      return StrFormat("scrub-retry @ 0x%08x", span.code);
    case SpanClass::kCount:
      break;
  }
  return "span";
}

void WriteCommonMember(JsonWriter& json, const char* name, const char* phase, uint64_t ts) {
  json.Field("name", name);
  json.Field("ph", phase);
  json.Field("ts", ts);
  json.Field("pid", 0);
  json.Field("tid", 0);
}

}  // namespace

void ExportChromeTraceWithSpans(const std::vector<TraceEvent>& events,
                                const std::vector<Span>& spans, std::ostream& out) {
  JsonWriter json(out);
  json.BeginObject();
  json.BeginArray("traceEvents");

  json.BeginObject();
  json.Field("name", "process_name");
  json.Field("ph", "M");
  json.Field("pid", 0);
  json.Field("tid", 0);
  json.BeginObject("args");
  json.Field("name", "msim");
  json.EndObject();
  json.EndObject();

  // Complete-event ("X") slices preserve nesting without begin/end pairing,
  // and flow arrows ("s"/"f") draw each cause chain: the arrow starts where
  // the causing span ends and lands where the caused span begins, so a
  // double-trap reads trap -> machine check -> scrub-retry left to right.
  for (const Span& span : spans) {
    json.BeginObject();
    const std::string name = SpanSliceName(span);
    WriteCommonMember(json, name.c_str(), "X", span.begin_cycle);
    json.Field("dur", span.cycles());
    json.BeginObject("args");
    json.Field("span_id", span.id);
    json.Field("class", SpanClassName(span.cls));
    json.Field("code", span.code);
    if (span.parent != 0) {
      json.Field("parent", span.parent);
    }
    if (span.cause != 0) {
      json.Field("cause", span.cause);
    }
    json.Field("aborted", span.aborted);
    json.EndObject();
    json.EndObject();
  }
  for (const Span& span : spans) {
    if (span.cause == 0) {
      continue;
    }
    json.BeginObject();
    WriteCommonMember(json, "cause", "s", span.begin_cycle);
    json.Field("cat", "causal");
    json.Field("id", span.id);
    json.EndObject();
    json.BeginObject();
    WriteCommonMember(json, "cause", "f", span.begin_cycle);
    json.Field("cat", "causal");
    json.Field("id", span.id);
    json.Field("bp", "e");
    json.EndObject();
  }

  // Non-transition events render as instants, as in ExportChromeTrace; the
  // transition events themselves are already covered by the span slices.
  for (const TraceEvent& event : events) {
    switch (event.kind) {
      case TraceEventKind::kMenter:
      case TraceEventKind::kMexit:
      case TraceEventKind::kTrap:
      case TraceEventKind::kInterrupt:
        break;
      default: {
        json.BeginObject();
        WriteCommonMember(json, TraceEventKindName(event.kind), "i", event.cycle);
        json.Field("s", "t");
        json.BeginObject("args");
        json.Field("pc", StrFormat("0x%08x", event.pc));
        json.Field("arg0", event.arg0);
        json.Field("arg1", event.arg1);
        json.Field("metal", event.metal);
        json.EndObject();
        json.EndObject();
        break;
      }
    }
  }
  json.EndArray();
  json.Field("displayTimeUnit", "ms");
  json.EndObject();
}

}  // namespace msim
