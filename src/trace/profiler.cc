#include "trace/profiler.h"

#include <cinttypes>
#include <cstdio>

#include "snap/snapstream.h"
#include "trace/json.h"

namespace msim {

void MroutineProfiler::OpenSpan(uint32_t entry, uint64_t cycle, bool via_trap) {
  if (in_metal_) {
    // Defensive: the architecture brackets Metal mode strictly (traps inside
    // Metal mode are fatal, nested menter faults), but never double-open.
    CloseSpan(cycle);
  }
  in_metal_ = true;
  span_start_ = cycle;
  if (entry < kMaxMroutines) {
    current_known_ = true;
    current_entry_ = entry;
    if (via_trap) {
      ++entries_[entry].trap_enters;
    } else {
      ++entries_[entry].enters;
    }
  } else {
    current_known_ = false;
    if (via_trap) {
      ++unattributed_.trap_enters;
    } else {
      ++unattributed_.enters;
    }
  }
}

void MroutineProfiler::CloseSpan(uint64_t cycle) {
  if (!in_metal_) {
    return;
  }
  EntryProfile& profile = current_known_ ? entries_[current_entry_] : unattributed_;
  profile.cycles += cycle >= span_start_ ? cycle - span_start_ : 0;
  last_known_ = current_known_;
  last_entry_ = current_entry_;
  in_metal_ = false;
  current_known_ = false;
}

void MroutineProfiler::OnEvent(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kMenter:
      OpenSpan(event.arg0, event.cycle, /*via_trap=*/false);
      break;
    case TraceEventKind::kTrap:
    case TraceEventKind::kInterrupt:
      OpenSpan(event.arg1, event.cycle, /*via_trap=*/true);
      break;
    case TraceEventKind::kMexit:
      CloseSpan(event.cycle);
      break;
    case TraceEventKind::kChainFold:
      ++chain_folds_;
      break;
    case TraceEventKind::kRetire:
      if (event.metal) {
        if (in_metal_) {
          (current_known_ ? entries_[current_entry_] : unattributed_).instret += 1;
        } else {
          (last_known_ ? entries_[last_entry_] : unattributed_).instret += 1;
        }
      } else {
        ++normal_instret_;
      }
      break;
    default:
      break;
  }
}

void MroutineProfiler::Finalize(uint64_t final_cycle) { CloseSpan(final_cycle); }

uint64_t MroutineProfiler::total_metal_cycles() const {
  uint64_t total = unattributed_.cycles;
  for (const EntryProfile& profile : entries_) {
    total += profile.cycles;
  }
  return total;
}

uint64_t MroutineProfiler::total_metal_instret() const {
  uint64_t total = unattributed_.instret;
  for (const EntryProfile& profile : entries_) {
    total += profile.instret;
  }
  return total;
}

void MroutineProfiler::WriteText(std::ostream& out, uint64_t total_cycles) const {
  char line[160];
  out << "--- per-mroutine profile ---\n";
  std::snprintf(line, sizeof(line), "%-8s %10s %10s %12s %12s %8s\n", "entry", "menters",
                "traps", "instret", "cycles", "%cycles");
  out << line;
  auto row = [&](const char* label, const EntryProfile& profile) {
    const double pct =
        total_cycles != 0 ? 100.0 * static_cast<double>(profile.cycles) / total_cycles : 0.0;
    std::snprintf(line, sizeof(line),
                  "%-8s %10" PRIu64 " %10" PRIu64 " %12" PRIu64 " %12" PRIu64 " %7.2f%%\n",
                  label, profile.enters, profile.trap_enters, profile.instret, profile.cycles,
                  pct);
    out << line;
  };
  for (uint32_t entry = 0; entry < kMaxMroutines; ++entry) {
    const EntryProfile& profile = entries_[entry];
    if (profile.total_enters() == 0 && profile.instret == 0 && profile.cycles == 0) {
      continue;
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%u", entry);
    row(label, profile);
  }
  if (unattributed_.total_enters() != 0 || unattributed_.instret != 0 ||
      unattributed_.cycles != 0) {
    row("(other)", unattributed_);
  }
  const uint64_t metal_cycles = total_metal_cycles();
  const uint64_t normal_cycles = total_cycles >= metal_cycles ? total_cycles - metal_cycles : 0;
  std::snprintf(line, sizeof(line),
                "normal: %" PRIu64 " instret / %" PRIu64 " cycles;  Metal: %" PRIu64
                " instret / %" PRIu64 " cycles;  chain folds: %" PRIu64 "\n",
                normal_instret_, normal_cycles, total_metal_instret(), metal_cycles,
                chain_folds_);
  out << line;
}

void MroutineProfiler::AppendJson(JsonWriter& json, uint64_t total_cycles) const {
  json.BeginArray("entries");
  auto entry_object = [&](int64_t entry, const EntryProfile& profile) {
    json.BeginObject();
    json.Field("entry", entry);
    json.Field("menters", profile.enters);
    json.Field("trap_enters", profile.trap_enters);
    json.Field("instret", profile.instret);
    json.Field("cycles", profile.cycles);
    json.EndObject();
  };
  for (uint32_t entry = 0; entry < kMaxMroutines; ++entry) {
    const EntryProfile& profile = entries_[entry];
    if (profile.total_enters() == 0 && profile.instret == 0 && profile.cycles == 0) {
      continue;
    }
    entry_object(entry, profile);
  }
  if (unattributed_.total_enters() != 0 || unattributed_.instret != 0 ||
      unattributed_.cycles != 0) {
    entry_object(-1, unattributed_);
  }
  json.EndArray();
  json.BeginObject("totals");
  json.Field("total_cycles", total_cycles);
  json.Field("metal_cycles", total_metal_cycles());
  json.Field("metal_instret", total_metal_instret());
  json.Field("normal_instret", normal_instret_);
  json.Field("chain_folds", chain_folds_);
  json.EndObject();
}

namespace {
void SaveEntry(SnapWriter& w, const MroutineProfiler::EntryProfile& entry) {
  w.U64(entry.enters);
  w.U64(entry.trap_enters);
  w.U64(entry.instret);
  w.U64(entry.cycles);
}

void RestoreEntry(SnapReader& r, MroutineProfiler::EntryProfile& entry) {
  entry.enters = r.U64();
  entry.trap_enters = r.U64();
  entry.instret = r.U64();
  entry.cycles = r.U64();
}
}  // namespace

void MroutineProfiler::SaveState(SnapWriter& w) const {
  for (const EntryProfile& entry : entries_) {
    SaveEntry(w, entry);
  }
  SaveEntry(w, unattributed_);
  w.U64(normal_instret_);
  w.U64(chain_folds_);
  w.Bool(in_metal_);
  w.Bool(current_known_);
  w.U32(current_entry_);
  w.U64(span_start_);
  w.Bool(last_known_);
  w.U32(last_entry_);
}

Status MroutineProfiler::RestoreState(SnapReader& r) {
  for (EntryProfile& entry : entries_) {
    RestoreEntry(r, entry);
  }
  RestoreEntry(r, unattributed_);
  normal_instret_ = r.U64();
  chain_folds_ = r.U64();
  in_metal_ = r.Bool();
  current_known_ = r.Bool();
  current_entry_ = r.U32();
  span_start_ = r.U64();
  last_known_ = r.Bool();
  last_entry_ = r.U32();
  return r.ToStatus("mroutine profiler");
}

}  // namespace msim
