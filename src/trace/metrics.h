// MetricRegistry: a central, enumerable registry of named counters and
// histograms.
//
// Components (core, caches, TLB, MRAM, Metal unit, devices) register their
// counters once at construction; exporters then enumerate the registry
// instead of hand-copying struct fields. Two registration forms exist:
//   * a raw pointer to a uint64_t the component increments on its hot path
//     (no per-increment overhead — the registry only reads at dump time), and
//   * a getter callback for values that are derived or owned elsewhere.
// Distribution-valued statistics register a pointer to a Histogram
// (trace/histogram.h) the same way; exporters read counts and percentiles at
// dump time. Registration order is preserved so text and JSON dumps are
// stable.
#ifndef MSIM_TRACE_METRICS_H_
#define MSIM_TRACE_METRICS_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace msim {

class Histogram;
class JsonWriter;

class MetricRegistry {
 public:
  struct Metric {
    std::string component;  // e.g. "core", "icache"
    std::string name;       // e.g. "cycles", "misses"
    std::string help;       // one-line description (may be empty)
    const uint64_t* counter = nullptr;       // used when non-null
    std::function<uint64_t()> getter;        // used otherwise

    uint64_t value() const { return counter != nullptr ? *counter : getter(); }
  };

  // Registers a counter backed by component-owned storage. The pointer must
  // outlive the registry (counters live in long-lived component structs).
  void Register(std::string component, std::string name, const uint64_t* counter,
                std::string help = {});

  // Registers a derived/computed value.
  void RegisterFn(std::string component, std::string name, std::function<uint64_t()> getter,
                  std::string help = {});

  struct HistogramMetric {
    std::string component;  // e.g. "latency"
    std::string name;       // e.g. "trap_page_fault_load"
    std::string help;
    const Histogram* histogram = nullptr;
  };

  // Registers a distribution backed by component-owned storage. The pointer
  // must outlive the registry.
  void RegisterHistogram(std::string component, std::string name, const Histogram* histogram,
                         std::string help = {});

  const std::vector<Metric>& metrics() const { return metrics_; }
  const std::vector<HistogramMetric>& histograms() const { return histograms_; }

  // Looks up a registered histogram; returns nullptr if absent.
  const Histogram* FindHistogram(std::string_view component, std::string_view name) const;

  // Looks up a metric's current value; returns 0 if absent (`found` reports
  // whether the metric exists when non-null).
  uint64_t Value(std::string_view component, std::string_view name,
                 bool* found = nullptr) const;

  // Writes `{"component": {"name": value, ...}, ...}` grouped by component in
  // registration order.
  void WriteJson(std::ostream& out) const;

  // Same component groups, appended as members of an already-open JSON object
  // (lets callers embed the registry in a larger stats document).
  void AppendJson(JsonWriter& json) const;

  // Appends the registered histograms, grouped by component like AppendJson,
  // to an already-open JSON object. Histograms with no samples are skipped
  // (per-cause latency families register every cause up front; dumping the
  // empty ones would bury the signal).
  void AppendHistogramsJson(JsonWriter& json) const;

  // Writes aligned `component.name  value` lines; non-empty histograms follow
  // as `component.name  count=N p50=... p99=... max=...` lines.
  void WriteText(std::ostream& out) const;

 private:
  std::vector<Metric> metrics_;
  std::vector<HistogramMetric> histograms_;
};

}  // namespace msim

#endif  // MSIM_TRACE_METRICS_H_
