// MetricRegistry: a central, enumerable registry of named counters.
//
// Components (core, caches, TLB, MRAM, Metal unit, devices) register their
// counters once at construction; exporters then enumerate the registry
// instead of hand-copying struct fields. Two registration forms exist:
//   * a raw pointer to a uint64_t the component increments on its hot path
//     (no per-increment overhead — the registry only reads at dump time), and
//   * a getter callback for values that are derived or owned elsewhere.
// Registration order is preserved so text and JSON dumps are stable.
#ifndef MSIM_TRACE_METRICS_H_
#define MSIM_TRACE_METRICS_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace msim {

class JsonWriter;

class MetricRegistry {
 public:
  struct Metric {
    std::string component;  // e.g. "core", "icache"
    std::string name;       // e.g. "cycles", "misses"
    std::string help;       // one-line description (may be empty)
    const uint64_t* counter = nullptr;       // used when non-null
    std::function<uint64_t()> getter;        // used otherwise

    uint64_t value() const { return counter != nullptr ? *counter : getter(); }
  };

  // Registers a counter backed by component-owned storage. The pointer must
  // outlive the registry (counters live in long-lived component structs).
  void Register(std::string component, std::string name, const uint64_t* counter,
                std::string help = {});

  // Registers a derived/computed value.
  void RegisterFn(std::string component, std::string name, std::function<uint64_t()> getter,
                  std::string help = {});

  const std::vector<Metric>& metrics() const { return metrics_; }

  // Looks up a metric's current value; returns 0 if absent (`found` reports
  // whether the metric exists when non-null).
  uint64_t Value(std::string_view component, std::string_view name,
                 bool* found = nullptr) const;

  // Writes `{"component": {"name": value, ...}, ...}` grouped by component in
  // registration order.
  void WriteJson(std::ostream& out) const;

  // Same component groups, appended as members of an already-open JSON object
  // (lets callers embed the registry in a larger stats document).
  void AppendJson(JsonWriter& json) const;

  // Writes aligned `component.name  value` lines.
  void WriteText(std::ostream& out) const;

 private:
  std::vector<Metric> metrics_;
};

}  // namespace msim

#endif  // MSIM_TRACE_METRICS_H_
