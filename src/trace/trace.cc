#include "trace/trace.h"

#include <algorithm>

#include "cpu/trap.h"
#include "snap/snapstream.h"
#include "support/strings.h"
#include "trace/json.h"

namespace msim {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kRetire:
      return "retire";
    case TraceEventKind::kMenter:
      return "menter";
    case TraceEventKind::kMexit:
      return "mexit";
    case TraceEventKind::kChainFold:
      return "chain_fold";
    case TraceEventKind::kTrap:
      return "trap";
    case TraceEventKind::kInterrupt:
      return "interrupt";
    case TraceEventKind::kIntercept:
      return "intercept";
    case TraceEventKind::kICacheMiss:
      return "icache_miss";
    case TraceEventKind::kDCacheMiss:
      return "dcache_miss";
    case TraceEventKind::kTlbMiss:
      return "tlb_miss";
    case TraceEventKind::kMramAccess:
      return "mram_access";
    case TraceEventKind::kStall:
      return "stall";
    case TraceEventKind::kFlush:
      return "flush";
    case TraceEventKind::kFaultInject:
      return "fault_inject";
    case TraceEventKind::kMachineCheck:
      return "machine_check";
    case TraceEventKind::kCount:
      break;
  }
  return "unknown";
}

RingBufferSink::RingBufferSink(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  buffer_.reserve(std::min<size_t>(capacity_, 4096));
}

void RingBufferSink::OnEvent(const TraceEvent& event) {
  ++total_;
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
    return;
  }
  buffer_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> RingBufferSink::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(buffer_.size());
  for (size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(next_ + i) % buffer_.size()]);
  }
  return out;
}

void RingBufferSink::Clear() {
  buffer_.clear();
  next_ = 0;
  total_ = 0;
  dropped_ = 0;
}

void RingBufferSink::SaveState(SnapWriter& w) const {
  w.U64(static_cast<uint64_t>(capacity_));
  w.U64(total_);
  w.U64(dropped_);
  const std::vector<TraceEvent> events = Events();
  w.U64(static_cast<uint64_t>(events.size()));
  for (const TraceEvent& event : events) {
    w.U8(static_cast<uint8_t>(event.kind));
    w.Bool(event.metal);
    w.U64(event.cycle);
    w.U32(event.pc);
    w.U32(event.arg0);
    w.U32(event.arg1);
  }
}

Status RingBufferSink::RestoreState(SnapReader& r) {
  const uint64_t capacity = r.U64();
  if (capacity == 0 || capacity > (1u << 24)) {
    return InvalidArgument("trace ring snapshot: implausible capacity");
  }
  capacity_ = static_cast<size_t>(capacity);
  total_ = r.U64();
  dropped_ = r.U64();
  const uint64_t count = r.U64();
  if (count > capacity) {
    return InvalidArgument("trace ring snapshot: count exceeds capacity");
  }
  buffer_.clear();
  next_ = 0;
  for (uint64_t i = 0; i < count; ++i) {
    TraceEvent event;
    event.kind = static_cast<TraceEventKind>(r.U8() %
                                             static_cast<uint8_t>(TraceEventKind::kCount));
    event.metal = r.Bool();
    event.cycle = r.U64();
    event.pc = r.U32();
    event.arg0 = r.U32();
    event.arg1 = r.U32();
    buffer_.push_back(event);
  }
  return r.ToStatus("trace ring");
}

namespace {

// Display name for the slice opened by a mode-entering event.
std::string SliceName(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kMenter:
      return StrFormat("mroutine %u", event.arg0);
    case TraceEventKind::kTrap:
      return StrFormat("trap %s -> entry %u",
                       ExcCauseName(static_cast<ExcCause>(event.arg0)), event.arg1);
    case TraceEventKind::kInterrupt:
      return StrFormat("irq %u -> entry %u", event.arg0 & ~kInterruptCauseFlag, event.arg1);
    case TraceEventKind::kIntercept:
      return StrFormat("intercept -> entry %u", event.arg1);
    default:
      return TraceEventKindName(event.kind);
  }
}

void WriteCommon(JsonWriter& json, const char* name, const char* phase, uint64_t ts) {
  json.Field("name", name);
  json.Field("ph", phase);
  json.Field("ts", ts);
  json.Field("pid", 0);
  json.Field("tid", 0);
}

}  // namespace

void ExportChromeTrace(const std::vector<TraceEvent>& events, std::ostream& out) {
  JsonWriter json(out);
  json.BeginObject();
  json.BeginArray("traceEvents");

  // Name the single process/thread for the trace viewer.
  json.BeginObject();
  json.Field("name", "process_name");
  json.Field("ph", "M");
  json.Field("pid", 0);
  json.Field("tid", 0);
  json.BeginObject("args");
  json.Field("name", "msim");
  json.EndObject();
  json.EndObject();

  uint64_t last_cycle = 0;
  int open_slices = 0;
  for (const TraceEvent& event : events) {
    last_cycle = std::max(last_cycle, event.cycle);
    switch (event.kind) {
      case TraceEventKind::kMenter:
      case TraceEventKind::kTrap:
      case TraceEventKind::kInterrupt: {
        json.BeginObject();
        const std::string name = SliceName(event);
        WriteCommon(json, name.c_str(), "B", event.cycle);
        json.BeginObject("args");
        json.Field("pc", StrFormat("0x%08x", event.pc));
        if (event.kind == TraceEventKind::kMenter) {
          json.Field("entry", event.arg0);
          json.Field("handler", StrFormat("0x%08x", event.arg1));
        } else {
          json.Field("cause", event.arg0);
          json.Field("entry", event.arg1);
        }
        json.EndObject();
        json.EndObject();
        ++open_slices;
        break;
      }
      case TraceEventKind::kMexit: {
        if (open_slices == 0) {
          break;  // exit without a recorded enter (ring buffer wrapped)
        }
        json.BeginObject();
        WriteCommon(json, "mexit", "E", event.cycle);
        json.EndObject();
        --open_slices;
        break;
      }
      default: {
        json.BeginObject();
        WriteCommon(json, TraceEventKindName(event.kind), "i", event.cycle);
        json.Field("s", "t");
        json.BeginObject("args");
        json.Field("pc", StrFormat("0x%08x", event.pc));
        json.Field("arg0", event.arg0);
        json.Field("arg1", event.arg1);
        json.Field("metal", event.metal);
        json.EndObject();
        json.EndObject();
        break;
      }
    }
  }
  // Close any slice still open when tracing stopped (e.g. the simulation
  // halted inside an mroutine) so viewers do not drop it.
  for (; open_slices > 0; --open_slices) {
    json.BeginObject();
    WriteCommon(json, "end_of_trace", "E", last_cycle);
    json.EndObject();
  }
  json.EndArray();
  json.Field("displayTimeUnit", "ms");
  json.EndObject();
}

}  // namespace msim
