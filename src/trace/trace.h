// Structured event tracing for the simulator.
//
// Components emit typed TraceEvents through a Tracer — a thin, non-owning
// emitter that stamps the current simulated cycle and forwards to an attached
// TraceSink. With no sink attached, emission is a single branch (the same
// zero-cost-when-unused contract as Core::RetireTrace). Sinks:
//   * RingBufferSink keeps the most recent N events (drop-oldest),
//   * TeeSink fans one event stream out to several sinks,
//   * MroutineProfiler (trace/profiler.h) aggregates instead of recording.
// ExportChromeTrace writes a Chrome trace_event JSON file (1 cycle = 1 us)
// that loads in Perfetto / chrome://tracing: Metal-mode residency appears as
// duration slices, everything else as instant events.
#ifndef MSIM_TRACE_TRACE_H_
#define MSIM_TRACE_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "support/result.h"

namespace msim {

class SnapWriter;
class SnapReader;

enum class TraceEventKind : uint8_t {
  kRetire = 0,     // pc, arg0 = raw instruction word
  kMenter,         // pc = menter pc, arg0 = entry, arg1 = handler address
  kMexit,          // pc = mexit pc, arg0 = resume address, arg1 = exit flags
                   //   (bit 0: Metal mode retained — MRAM resume; bit 1:
                   //    machine-check recovery exit, i.e. scrub-and-retry)
  kChainFold,      // pc, arg0 = enters, arg1 = exits folded into one op
  kTrap,           // pc = epc, arg0 = cause, arg1 = entry
  kInterrupt,      // pc = epc, arg0 = mcause (top bit set), arg1 = entry
  kIntercept,      // pc = intercepted pc, arg0 = raw word, arg1 = entry
  kICacheMiss,     // pc = paddr
  kDCacheMiss,     // pc = paddr
  kTlbMiss,        // pc = vaddr, arg0 = access type (AccessType)
  kMramAccess,     // pc = address/offset, arg0: 0 = fetch, 1 = load, 2 = store
  kStall,          // pc, arg0 = stall kind (0 = load-use)
  kFlush,          // pc = redirect target
  kFaultInject,    // pc = location, arg0 = FaultTarget, arg1 = xor mask
  kMachineCheck,   // pc = epc, arg0 = McheckKind, arg1 = info word
  kCount,
};

// Stable lowercase name for exporters ("retire", "menter", ...).
const char* TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kRetire;
  bool metal = false;  // emitted while the committed mode was Metal
  uint64_t cycle = 0;
  uint32_t pc = 0;     // primary address (pc or memory address)
  uint32_t arg0 = 0;   // kind-specific, see TraceEventKind
  uint32_t arg1 = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

// Bounded recorder: keeps the most recent `capacity` events in order.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(size_t capacity = 1 << 20);

  void OnEvent(const TraceEvent& event) override;

  // Events in emission order (oldest first).
  std::vector<TraceEvent> Events() const;
  uint64_t dropped() const { return dropped_; }
  uint64_t total() const { return total_; }
  void Clear();

  // Checkpoint/restore (src/snap): the retained window rides in snapshots so
  // a restored run's crash-dump trace matches the straight run's byte for
  // byte even when part of the window predates the restore point.
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

 private:
  std::vector<TraceEvent> buffer_;
  size_t capacity_;
  size_t next_ = 0;
  uint64_t total_ = 0;
  uint64_t dropped_ = 0;
};

// Forwards every event to each attached sink (non-owning).
class TeeSink : public TraceSink {
 public:
  void Add(TraceSink* sink) {
    if (sink != nullptr) {
      sinks_.push_back(sink);
    }
  }
  void OnEvent(const TraceEvent& event) override {
    for (TraceSink* sink : sinks_) {
      sink->OnEvent(event);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

// The emitter embedded in instrumented components. Non-owning: the sink and
// the cycle counter belong to the caller (Core wires both). Components hold a
// Tracer* and call Emit unconditionally; a null sink makes it a no-op.
class Tracer {
 public:
  void Attach(TraceSink* sink, const uint64_t* cycle) {
    sink_ = sink;
    cycle_ = cycle;
  }
  void Detach() { sink_ = nullptr; }
  bool enabled() const { return sink_ != nullptr; }

  void Emit(TraceEventKind kind, uint32_t pc, uint32_t arg0 = 0, uint32_t arg1 = 0,
            bool metal = false) {
    if (sink_ == nullptr) {
      return;
    }
    TraceEvent event;
    event.kind = kind;
    event.metal = metal;
    event.cycle = cycle_ != nullptr ? *cycle_ : 0;
    event.pc = pc;
    event.arg0 = arg0;
    event.arg1 = arg1;
    sink_->OnEvent(event);
  }

 private:
  TraceSink* sink_ = nullptr;
  const uint64_t* cycle_ = nullptr;
};

// Writes Chrome trace_event JSON ({"traceEvents": [...]}): duration slices
// ("B"/"E") for Metal-mode residency opened by menter/trap/interrupt events
// and closed by mexit (unbalanced slices are closed at the last cycle), and
// instant events for everything else. Timestamps are simulated cycles
// interpreted as microseconds. Events must be in emission (cycle) order.
void ExportChromeTrace(const std::vector<TraceEvent>& events, std::ostream& out);

}  // namespace msim

#endif  // MSIM_TRACE_TRACE_H_
