// Causal span tracing: turns the flat trace-event stream into linked,
// cycle-exact service spans.
//
// A span covers one Metal-mode service episode: it opens when the core
// delivers a trap/interrupt or commits an menter, and closes at the matching
// mexit. Spans carry two links:
//   * parent — the span that was open (stacked) when this one began, so
//     nested entries (an mroutine calling another via menter) stay connected;
//   * cause  — the span whose *failure or completion* produced this one.
//     A machine check aborts the open span and opens a recovery span whose
//     cause is the aborted span; a recovery mexit that resumes into MRAM
//     (scrub-and-retry, docs/robustness.md) opens a retry span whose cause is
//     the recovery span. A double-faulting pagefault therefore leaves a
//     three-link chain: trap -> machine check -> scrub-retry.
//
// The sink also aggregates per-event-class service latency histograms
// (trace/histogram.h): trap entry->resume per exception cause, interrupt
// delivery, menter calls, machine-check recovery, scrub-retry and — when a
// watchdog budget is configured — the per-span margin left under that
// budget. Everything is computed from committed trace events only, so fast
// (StepFast) and per-cycle runs produce identical spans and histograms, and
// SaveState/RestoreState make a restored run's statistics byte-identical.
#ifndef MSIM_TRACE_SPAN_H_
#define MSIM_TRACE_SPAN_H_

#include <array>
#include <cstdint>
#include <vector>

#include "cpu/trap.h"
#include "support/result.h"
#include "trace/histogram.h"
#include "trace/trace.h"

namespace msim {

class JsonWriter;
class MetricRegistry;
class SnapWriter;
class SnapReader;

enum class SpanClass : uint8_t {
  kMenter = 0,     // explicit menter instruction (fast or slow path)
  kTrap,           // exception delivery (including interception)
  kInterrupt,      // interrupt delivery
  kMachineCheck,   // machine-check recovery episode
  kScrubRetry,     // retried mroutine after a recovery mexit into MRAM
  kCount,
};

const char* SpanClassName(SpanClass cls);

struct Span {
  uint64_t id = 0;       // 1-based, sequential in open order
  uint64_t parent = 0;   // enclosing open span at open time (0 = none)
  uint64_t cause = 0;    // causal predecessor span (0 = none)
  SpanClass cls = SpanClass::kMenter;
  // Class-specific code: menter/trap/interrupt carry the delivery code
  // (entry, ExcCause, irq line); machine check the McheckKind; scrub-retry
  // the MRAM resume address.
  uint32_t code = 0;
  uint32_t entry = 0;    // mroutine entry number (kNoEntry when unknown)
  uint64_t begin_cycle = 0;
  uint64_t end_cycle = 0;
  bool closed = false;
  bool aborted = false;  // ended by a machine check instead of mexit

  static constexpr uint32_t kNoEntry = 0xFFFFFFFF;
  uint64_t cycles() const { return end_cycle - begin_cycle; }
};

class SpanSink : public TraceSink {
 public:
  // Keeps the most recent `retain` completed spans for export; aggregate
  // counters and histograms cover the whole run regardless.
  explicit SpanSink(size_t retain = 4096);

  void OnEvent(const TraceEvent& event) override;

  // Closes (as aborted) any span still open when the simulation stopped.
  // Call with Core::cycle() after the run, before exporting.
  void Finalize(uint64_t final_cycle);

  // Enables watchdog-margin recording: every closed Metal span records
  // `budget - cycles` (clamped at 0) into watchdog_margin(). 0 disables.
  void SetWatchdogBudget(uint64_t cycles) { watchdog_budget_ = cycles; }

  // Registers span counters (component "span") and latency histograms
  // (component "latency") so they appear in --stats-json / --trace-stats.
  void RegisterMetrics(MetricRegistry& registry);

  // Retained completed spans, oldest first.
  std::vector<Span> Spans() const;
  uint64_t opened() const { return opened_; }
  uint64_t closed() const { return closed_; }
  uint64_t aborted() const { return aborted_; }
  uint64_t retained_dropped() const { return retained_dropped_; }
  size_t open_depth() const { return open_.size(); }

  const Histogram& trap_latency(ExcCause cause) const {
    return trap_latency_[static_cast<uint32_t>(cause) % kNumExcCauses];
  }
  const Histogram& interrupt_latency() const { return interrupt_latency_; }
  const Histogram& menter_latency() const { return menter_latency_; }
  const Histogram& machine_check_latency() const { return machine_check_latency_; }
  const Histogram& scrub_retry_latency() const { return scrub_retry_latency_; }
  const Histogram& watchdog_margin() const { return watchdog_margin_; }

  // Appends {"opened": ..., "closed": ..., "aborted": ..., "spans": [...]}
  // members (the retained spans with their links) to an open object.
  void AppendJson(JsonWriter& json) const;

  // Checkpoint/restore (src/snap): counters, histograms and the open-span
  // stack. The retained completed-span ring is bounded export state and is
  // not serialized (same contract as RingBufferSink).
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

 private:
  void Open(SpanClass cls, uint32_t code, uint32_t entry, uint64_t cycle, uint64_t cause);
  void Close(uint64_t cycle, bool aborted);
  void Retain(const Span& span);
  void RecordLatency(const Span& span);

  std::vector<Span> open_;   // stack, innermost last
  std::vector<Span> done_;   // ring of retained completed spans
  size_t retain_;
  size_t done_next_ = 0;
  uint64_t next_id_ = 1;
  uint64_t opened_ = 0;
  uint64_t closed_ = 0;
  uint64_t aborted_ = 0;
  uint64_t retained_dropped_ = 0;
  uint64_t watchdog_budget_ = 0;

  std::array<Histogram, kNumExcCauses> trap_latency_{};
  Histogram interrupt_latency_;
  Histogram menter_latency_;
  Histogram machine_check_latency_;
  Histogram scrub_retry_latency_;
  Histogram watchdog_margin_;
};

// Span-aware Chrome trace export: duration slices come from the spans
// (nesting preserved), flow arrows (ph "s"/"f") connect each span to its
// causal predecessor, and the remaining events render as instants. Loads in
// Perfetto / chrome://tracing; 1 cycle = 1 us, as in ExportChromeTrace.
void ExportChromeTraceWithSpans(const std::vector<TraceEvent>& events,
                                const std::vector<Span>& spans, std::ostream& out);

}  // namespace msim

#endif  // MSIM_TRACE_SPAN_H_
