#include "trace/flight.h"

#include <algorithm>

#include "snap/snapstream.h"
#include "trace/json.h"

namespace msim {

FlightRecorder::FlightRecorder(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  buffer_.reserve(std::min<size_t>(capacity_, kDefaultCapacity));
}

bool FlightRecorder::Records(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kRetire:
    case TraceEventKind::kMenter:
    case TraceEventKind::kMexit:
    case TraceEventKind::kChainFold:
    case TraceEventKind::kTrap:
    case TraceEventKind::kInterrupt:
    case TraceEventKind::kIntercept:
    case TraceEventKind::kFaultInject:
    case TraceEventKind::kMachineCheck:
      return true;
    default:
      return false;
  }
}

void FlightRecorder::OnEvent(const TraceEvent& event) {
  if (!Records(event.kind)) {
    return;
  }
  ++total_;
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
    return;
  }
  buffer_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> FlightRecorder::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(buffer_.size());
  for (size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(next_ + i) % buffer_.size()]);
  }
  return out;
}

void FlightRecorder::Clear() {
  buffer_.clear();
  next_ = 0;
  total_ = 0;
  dropped_ = 0;
}

void FlightRecorder::AppendJson(JsonWriter& json) const {
  json.Field("capacity", static_cast<uint64_t>(capacity_));
  json.Field("total", total_);
  json.Field("dropped", dropped_);
  json.BeginArray("events");
  for (const TraceEvent& event : Events()) {
    json.BeginObject();
    json.Field("cycle", event.cycle);
    json.Field("kind", TraceEventKindName(event.kind));
    json.Field("pc", event.pc);
    json.Field("arg0", event.arg0);
    json.Field("arg1", event.arg1);
    json.Field("metal", event.metal);
    json.EndObject();
  }
  json.EndArray();
}

void FlightRecorder::SaveState(SnapWriter& w) const {
  w.U64(static_cast<uint64_t>(capacity_));
  w.U64(total_);
  w.U64(dropped_);
  const std::vector<TraceEvent> events = Events();
  w.U64(static_cast<uint64_t>(events.size()));
  for (const TraceEvent& event : events) {
    w.U8(static_cast<uint8_t>(event.kind));
    w.Bool(event.metal);
    w.U64(event.cycle);
    w.U32(event.pc);
    w.U32(event.arg0);
    w.U32(event.arg1);
  }
}

Status FlightRecorder::RestoreState(SnapReader& r) {
  const uint64_t capacity = r.U64();
  if (capacity == 0 || capacity > (1u << 20)) {
    return InvalidArgument("flight recorder snapshot: implausible capacity");
  }
  capacity_ = static_cast<size_t>(capacity);
  total_ = r.U64();
  dropped_ = r.U64();
  const uint64_t count = r.U64();
  if (count > capacity) {
    return InvalidArgument("flight recorder snapshot: count exceeds capacity");
  }
  buffer_.clear();
  next_ = 0;
  for (uint64_t i = 0; i < count; ++i) {
    TraceEvent event;
    event.kind = static_cast<TraceEventKind>(r.U8() %
                                             static_cast<uint8_t>(TraceEventKind::kCount));
    event.metal = r.Bool();
    event.cycle = r.U64();
    event.pc = r.U32();
    event.arg0 = r.U32();
    event.arg1 = r.U32();
    buffer_.push_back(event);
  }
  return r.ToStatus("flight recorder");
}

}  // namespace msim
