#include "trace/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace msim {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Remaining control characters (RFC 8259 requires escaping all of
        // U+0000..U+001F); bytes >= 0x20 — including UTF-8 continuation
        // bytes — pass through untouched.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (!has_members_.empty()) {
    if (has_members_.back()) {
      out_ << ',';
    }
    has_members_.back() = true;
  }
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  out_ << '"' << JsonEscape(key) << "\":";
}

void JsonWriter::BeginObject() {
  Separate();
  out_ << '{';
  has_members_.push_back(false);
}

void JsonWriter::BeginObject(std::string_view key) {
  Key(key);
  out_ << '{';
  has_members_.push_back(false);
}

void JsonWriter::EndObject() {
  out_ << '}';
  has_members_.pop_back();
}

void JsonWriter::BeginArray() {
  Separate();
  out_ << '[';
  has_members_.push_back(false);
}

void JsonWriter::BeginArray(std::string_view key) {
  Key(key);
  out_ << '[';
  has_members_.push_back(false);
}

void JsonWriter::EndArray() {
  out_ << ']';
  has_members_.pop_back();
}

void JsonWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  out_ << '"' << JsonEscape(value) << '"';
}

void JsonWriter::Field(std::string_view key, uint64_t value) {
  Key(key);
  out_ << value;
}

void JsonWriter::Field(std::string_view key, int64_t value) {
  Key(key);
  out_ << value;
}

void JsonWriter::Field(std::string_view key, double value) {
  Key(key);
  // JSON has no inf/nan literals; emit null instead of invalid bare tokens.
  if (!std::isfinite(value)) {
    out_ << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ << buf;
}

void JsonWriter::Field(std::string_view key, bool value) {
  Key(key);
  out_ << (value ? "true" : "false");
}

void JsonWriter::Value(std::string_view value) {
  Separate();
  out_ << '"' << JsonEscape(value) << '"';
}

void JsonWriter::Value(uint64_t value) {
  Separate();
  out_ << value;
}

// ---------------------------------------------------------------------------
// Validator: a small recursive-descent parser over the JSON grammar.
// ---------------------------------------------------------------------------

namespace {

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Validate() {
    SkipWs();
    if (!ParseValue()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool ParseLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  bool ParseString() {
    if (!Eat('"')) {
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= text_.size() ||
                  std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
                return false;
              }
              ++pos_;
            }
            break;
          }
          default:
            return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const size_t start = pos_;
    Eat('-');
    if (Peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    } else {
      return false;
    }
    if (Eat('.')) {
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool ParseObject() {
    if (!Eat('{')) {
      return false;
    }
    SkipWs();
    if (Eat('}')) {
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseString()) {
        return false;
      }
      SkipWs();
      if (!Eat(':')) {
        return false;
      }
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (Eat('}')) {
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }

  bool ParseArray() {
    if (!Eat('[')) {
      return false;
    }
    SkipWs();
    if (Eat(']')) {
      return true;
    }
    while (true) {
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (Eat(']')) {
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }

  bool ParseValue() {
    SkipWs();
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonLooksValid(std::string_view text) { return JsonValidator(text).Validate(); }

}  // namespace msim
