// Log-bucketed value distributions for the metric registry.
//
// A Histogram records uint64 samples into power-of-two buckets: bucket 0
// holds the value 0 and bucket b (1..64) holds [2^(b-1), 2^b - 1]. Recording
// is O(1) (a clz and an add) so it is cheap enough for per-event latencies on
// the simulation hot path. Percentiles are computed deterministically by rank
// walk with linear interpolation inside the landing bucket — identical inputs
// give bit-identical doubles, so exported JSON is byte-stable across runs,
// stepping modes and checkpoint/restore (docs/determinism.md).
#ifndef MSIM_TRACE_HISTOGRAM_H_
#define MSIM_TRACE_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "support/result.h"

namespace msim {

class JsonWriter;
class SnapWriter;
class SnapReader;

class Histogram {
 public:
  // Bucket 0 for the value 0, buckets 1..64 for [2^(b-1), 2^b - 1].
  static constexpr size_t kNumBuckets = 65;

  // Index of the bucket holding `value`.
  static size_t BucketIndex(uint64_t value);
  // Inclusive bounds of bucket `index`.
  static uint64_t BucketLow(size_t index);
  static uint64_t BucketHigh(size_t index);

  void Record(uint64_t value);
  void Reset();
  // Folds `other`'s samples into this histogram (bucket-wise; exact for
  // count/sum/min/max, percentile-exact at bucket granularity).
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  // Sum of all recorded values (wraps at 2^64 like every other counter).
  uint64_t sum() const { return sum_; }
  // min()/max() are 0 when the histogram is empty.
  uint64_t min() const { return count_ != 0 ? min_ : 0; }
  uint64_t max() const { return max_; }
  const std::array<uint64_t, kNumBuckets>& buckets() const { return buckets_; }

  // Deterministic percentile estimate for p in (0, 100): walks buckets to the
  // sample of rank ceil(p/100 * count) and interpolates linearly inside that
  // bucket, clamped to [min, max] (so a single-sample histogram reports that
  // sample at every p). Edges are pinned by definition, not interpolation:
  // p <= 0 (NaN included) returns min, p >= 100 returns max, and every
  // percentile of an empty histogram — edges included — returns 0.
  double Percentile(double p) const;

  // Appends count/sum/min/max/mean/p50/p90/p99 members plus a "buckets" array
  // of the non-empty buckets ({"lo", "hi", "n"}) to an open JSON object.
  void AppendJson(JsonWriter& json) const;

  // Checkpoint/restore (src/snap): full bucket contents, so a restored run's
  // percentiles are byte-identical to the straight run's.
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

}  // namespace msim

#endif  // MSIM_TRACE_HISTOGRAM_H_
