// Virtual-to-physical translation front-end.
//
// When paging is enabled (PGENABLE control register), every normal-mode
// fetch, load and store is translated through the TLB. Misses and violations
// become exceptions delivered to mroutines. Page-key checks consult the
// KEYPERM control register: 2 bits per key (read-allow, write-allow) for 16
// keys, allowing batch permission changes by rewriting a single register
// (paper §2.3, "Page Keys and Address Space IDs").
#ifndef MSIM_MMU_MMU_H_
#define MSIM_MMU_MMU_H_

#include <cstdint>

#include "cpu/trap.h"
#include "mmu/tlb.h"
#include "trace/trace.h"

namespace msim {

enum class AccessType { kFetch, kLoad, kStore };

struct TranslateResult {
  bool ok = false;
  uint32_t paddr = 0;
  ExcCause fault = ExcCause::kNone;
};

class Mmu {
 public:
  explicit Mmu(uint32_t tlb_entries = 32) : tlb_(tlb_entries) {}

  Tlb& tlb() { return tlb_; }
  const Tlb& tlb() const { return tlb_; }

  // Translates vaddr. `keyperm` is the current KEYPERM register: bit (2*key)
  // allows reads/execute under the key, bit (2*key + 1) allows writes.
  TranslateResult Translate(uint32_t vaddr, AccessType type, uint16_t asid,
                            uint32_t keyperm);

  // Side-effect-free twin of Translate for speculative fast paths
  // (Core::StepFast, superblock memory slots): same outcome, but no TLB
  // hit/miss counting and no kTlbMiss trace event. A fast path that commits
  // a translation replays the hit via tlb().CreditHits; one that observes
  // !ok must fall back to the per-cycle machinery, whose Translate call then
  // counts the miss and emits the event.
  TranslateResult ProbeTranslate(uint32_t vaddr, AccessType type, uint16_t asid,
                                 uint32_t keyperm) const;

  // Attaches the core's tracer; TLB misses emit kTlbMiss events.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  Tlb tlb_;
  Tracer* tracer_ = nullptr;
};

}  // namespace msim

#endif  // MSIM_MMU_MMU_H_
