#include "mmu/mmu.h"

namespace msim {
namespace {

ExcCause MissCause(AccessType type) {
  switch (type) {
    case AccessType::kFetch:
      return ExcCause::kTlbMissFetch;
    case AccessType::kLoad:
      return ExcCause::kTlbMissLoad;
    case AccessType::kStore:
      return ExcCause::kTlbMissStore;
  }
  return ExcCause::kTlbMissLoad;
}

ExcCause FaultCause(AccessType type) {
  switch (type) {
    case AccessType::kFetch:
      return ExcCause::kPageFaultFetch;
    case AccessType::kLoad:
      return ExcCause::kPageFaultLoad;
    case AccessType::kStore:
      return ExcCause::kPageFaultStore;
  }
  return ExcCause::kPageFaultLoad;
}

// Shared post-lookup half of Translate/ProbeTranslate: permission and
// page-key checks plus frame math for a resident entry.
TranslateResult ResolveEntry(const TlbEntry* entry, uint32_t vaddr, AccessType type,
                             uint32_t keyperm) {
  TranslateResult result;
  const uint32_t pte = entry->pte;
  const bool allowed = (type == AccessType::kFetch && (pte & kPteX) != 0) ||
                       (type == AccessType::kLoad && (pte & kPteR) != 0) ||
                       (type == AccessType::kStore && (pte & kPteW) != 0);
  if (!allowed) {
    result.fault = FaultCause(type);
    return result;
  }
  const uint32_t key = entry->key();
  const uint32_t key_bit = type == AccessType::kStore ? (2 * key + 1) : (2 * key);
  if (((keyperm >> key_bit) & 1u) == 0) {
    result.fault = ExcCause::kKeyViolation;
    return result;
  }
  if (entry->superpage()) {
    const uint32_t frame = pte & 0xFFC00000u;  // 4 MiB frame
    result.paddr = frame | (vaddr & 0x003FFFFFu);
  } else {
    const uint32_t frame = pte & 0xFFFFF000u;
    result.paddr = frame | (vaddr & 0x00000FFFu);
  }
  result.ok = true;
  return result;
}

}  // namespace

TranslateResult Mmu::Translate(uint32_t vaddr, AccessType type, uint16_t asid,
                               uint32_t keyperm) {
  const TlbEntry* entry = tlb_.Lookup(vaddr, asid);
  if (entry == nullptr) {
    if (tracer_ != nullptr) {
      tracer_->Emit(TraceEventKind::kTlbMiss, vaddr, static_cast<uint32_t>(type));
    }
    TranslateResult result;
    result.fault = MissCause(type);
    return result;
  }
  return ResolveEntry(entry, vaddr, type, keyperm);
}

TranslateResult Mmu::ProbeTranslate(uint32_t vaddr, AccessType type, uint16_t asid,
                                    uint32_t keyperm) const {
  const TlbEntry* entry = tlb_.PeekLookup(vaddr, asid);
  if (entry == nullptr) {
    TranslateResult result;
    result.fault = MissCause(type);
    return result;
  }
  return ResolveEntry(entry, vaddr, type, keyperm);
}

}  // namespace msim
