// Software-managed TLB with address-space IDs and page keys (paper §2.3).
//
// There is no hardware page-table walker: TLB misses raise exceptions that
// the processor delegates to mroutines, which walk whatever structure the OS
// chose (paper §3.2, custom page tables). Entries carry:
//   * an ASID so multiple address spaces can coexist in the TLB,
//   * a 4-bit page key indirecting permissions through the key-permission
//     control register (fast batch permission changes), and
//   * a superpage bit (4 MiB mappings) alongside regular 4 KiB pages.
#ifndef MSIM_MMU_TLB_H_
#define MSIM_MMU_TLB_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "support/result.h"
#include "trace/metrics.h"

namespace msim {

class SnapWriter;
class SnapReader;

// PTE layout (the rs2 operand of tlbwr and the result of tlbrd):
//   [31:12] ppn    physical page number (bits [31:12] of the frame address)
//   [11:8]  key    page key
//   [7]     G      global (matches every ASID)
//   [6]     S      superpage (4 MiB; low 10 ppn bits ignored)
//   [5]     X      executable
//   [4]     W      writable
//   [3]     R      readable
//   [2:0]   reserved (written as zero)
inline constexpr uint32_t kPteR = 1u << 3;
inline constexpr uint32_t kPteW = 1u << 4;
inline constexpr uint32_t kPteX = 1u << 5;
inline constexpr uint32_t kPteSuper = 1u << 6;
inline constexpr uint32_t kPteGlobal = 1u << 7;

inline constexpr uint32_t kPageShift = 12;
inline constexpr uint32_t kPageSize = 1u << kPageShift;
inline constexpr uint32_t kSuperPageShift = 22;

// Builds a PTE word.
constexpr uint32_t MakePte(uint32_t paddr_frame, uint32_t perms, uint32_t key = 0,
                           bool global = false, bool superpage = false) {
  return (paddr_frame & 0xFFFFF000u) | ((key & 0xFu) << 8) | (global ? kPteGlobal : 0u) |
         (superpage ? kPteSuper : 0u) | (perms & (kPteR | kPteW | kPteX));
}

struct TlbEntry {
  bool valid = false;
  uint32_t vpn = 0;   // virtual page number (vaddr >> 12); superpages store vaddr >> 22
  uint16_t asid = 0;
  uint32_t pte = 0;

  bool global() const { return (pte & kPteGlobal) != 0; }
  bool superpage() const { return (pte & kPteSuper) != 0; }
  uint32_t key() const { return (pte >> 8) & 0xF; }
};

struct TlbStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
};

class Tlb {
 public:
  explicit Tlb(uint32_t num_entries = 32);

  uint32_t capacity() const { return static_cast<uint32_t>(entries_.size()); }

  // Looks up vaddr for `asid`; returns the matching entry or nullptr. Updates
  // hit/miss statistics.
  const TlbEntry* Lookup(uint32_t vaddr, uint16_t asid);

  // Side-effect-free twin of Lookup for speculative fast paths
  // (Core::StepFast): identical match, no statistics. Lookup's only mutation
  // is the hit/miss counters (replacement state moves on Insert alone), so
  // PeekLookup + CreditHits for the committed hits is exactly equivalent.
  const TlbEntry* PeekLookup(uint32_t vaddr, uint16_t asid) const;

  // Replays hit counts committed against PeekLookup-based fast paths.
  void CreditHits(uint64_t n) { stats_.hits += n; }

  // Inserts a mapping (tlbwr). Replaces an existing entry for the same page
  // if present, else uses round-robin replacement.
  void Insert(uint32_t vaddr, uint32_t pte, uint16_t asid);

  // Probe without statistics (tlbrd): PTE or 0.
  uint32_t Probe(uint32_t vaddr, uint16_t asid) const;

  // Invalidates entries mapping vaddr under `asid` (global entries included).
  void InvalidateVaddr(uint32_t vaddr, uint16_t asid);

  // Invalidates all non-global entries with the given ASID.
  void FlushAsid(uint16_t asid);

  // Invalidates everything.
  void FlushAll();

  // Fault-injection port: rewrites the indexed entry's PTE as
  // (pte & and_mask) ^ xor_mask — silently corrupting permissions, the page
  // key or the frame number. `index` wraps modulo the capacity. Only valid
  // entries are affected; returns whether one was.
  bool CorruptEntry(uint32_t index, uint32_t and_mask, uint32_t xor_mask);

  // Number of valid entries (for tests).
  uint32_t ValidCount() const;

  // Checkpoint/restore (src/snap): entries, replacement pointer and counters.
  // Restore fails if the saved capacity differs.
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats{}; }

  void RegisterMetrics(MetricRegistry& registry) const {
    registry.Register("tlb", "hits", &stats_.hits);
    registry.Register("tlb", "misses", &stats_.misses);
    registry.Register("tlb", "insertions", &stats_.insertions);
  }

 private:
  bool Matches(const TlbEntry& entry, uint32_t vaddr, uint16_t asid) const;

  std::vector<TlbEntry> entries_;
  uint32_t next_victim_ = 0;
  TlbStats stats_;
};

}  // namespace msim

#endif  // MSIM_MMU_TLB_H_
