#include "mmu/tlb.h"

#include "snap/snapstream.h"

namespace msim {

Tlb::Tlb(uint32_t num_entries) : entries_(num_entries) {}

bool Tlb::Matches(const TlbEntry& entry, uint32_t vaddr, uint16_t asid) const {
  if (!entry.valid) {
    return false;
  }
  if (!entry.global() && entry.asid != asid) {
    return false;
  }
  const uint32_t shift = entry.superpage() ? kSuperPageShift : kPageShift;
  return entry.vpn == (vaddr >> shift);
}

const TlbEntry* Tlb::Lookup(uint32_t vaddr, uint16_t asid) {
  for (const TlbEntry& entry : entries_) {
    if (Matches(entry, vaddr, asid)) {
      ++stats_.hits;
      return &entry;
    }
  }
  ++stats_.misses;
  return nullptr;
}

const TlbEntry* Tlb::PeekLookup(uint32_t vaddr, uint16_t asid) const {
  for (const TlbEntry& entry : entries_) {
    if (Matches(entry, vaddr, asid)) {
      return &entry;
    }
  }
  return nullptr;
}

void Tlb::Insert(uint32_t vaddr, uint32_t pte, uint16_t asid) {
  const bool superpage = (pte & kPteSuper) != 0;
  const uint32_t shift = superpage ? kSuperPageShift : kPageShift;
  const uint32_t vpn = vaddr >> shift;
  ++stats_.insertions;
  // Update in place if the page is already mapped (same ASID and size).
  for (TlbEntry& entry : entries_) {
    if (entry.valid && entry.asid == asid && entry.superpage() == superpage &&
        entry.vpn == vpn) {
      entry.pte = pte;
      return;
    }
  }
  // Prefer an invalid slot; else round-robin.
  for (uint32_t i = 0; i < entries_.size(); ++i) {
    const uint32_t index = (next_victim_ + i) % entries_.size();
    if (!entries_[index].valid) {
      entries_[index] = TlbEntry{true, vpn, asid, pte};
      next_victim_ = (index + 1) % static_cast<uint32_t>(entries_.size());
      return;
    }
  }
  entries_[next_victim_] = TlbEntry{true, vpn, asid, pte};
  next_victim_ = (next_victim_ + 1) % static_cast<uint32_t>(entries_.size());
}

uint32_t Tlb::Probe(uint32_t vaddr, uint16_t asid) const {
  for (const TlbEntry& entry : entries_) {
    if (Matches(entry, vaddr, asid)) {
      return entry.pte;
    }
  }
  return 0;
}

void Tlb::InvalidateVaddr(uint32_t vaddr, uint16_t asid) {
  for (TlbEntry& entry : entries_) {
    if (Matches(entry, vaddr, asid)) {
      entry.valid = false;
    }
  }
}

void Tlb::FlushAsid(uint16_t asid) {
  for (TlbEntry& entry : entries_) {
    if (entry.valid && !entry.global() && entry.asid == asid) {
      entry.valid = false;
    }
  }
}

void Tlb::FlushAll() {
  for (TlbEntry& entry : entries_) {
    entry.valid = false;
  }
}

bool Tlb::CorruptEntry(uint32_t index, uint32_t and_mask, uint32_t xor_mask) {
  TlbEntry& entry = entries_[index % entries_.size()];
  if (!entry.valid) {
    return false;
  }
  entry.pte = (entry.pte & and_mask) ^ xor_mask;
  return true;
}

uint32_t Tlb::ValidCount() const {
  uint32_t count = 0;
  for (const TlbEntry& entry : entries_) {
    count += entry.valid ? 1 : 0;
  }
  return count;
}

void Tlb::SaveState(SnapWriter& w) const {
  w.U32(capacity());
  for (const TlbEntry& entry : entries_) {
    w.Bool(entry.valid);
    w.U32(entry.vpn);
    w.U16(entry.asid);
    w.U32(entry.pte);
  }
  w.U32(next_victim_);
  w.U64(stats_.hits);
  w.U64(stats_.misses);
  w.U64(stats_.insertions);
}

Status Tlb::RestoreState(SnapReader& r) {
  const uint32_t saved_capacity = r.U32();
  MSIM_RETURN_IF_ERROR(r.ToStatus("tlb header"));
  if (saved_capacity != capacity()) {
    return InvalidArgument("snapshot TLB capacity differs from this configuration");
  }
  for (TlbEntry& entry : entries_) {
    entry.valid = r.Bool();
    entry.vpn = r.U32();
    entry.asid = r.U16();
    entry.pte = r.U32();
  }
  next_victim_ = r.U32();
  stats_.hits = r.U64();
  stats_.misses = r.U64();
  stats_.insertions = r.U64();
  return r.ToStatus("tlb entries");
}

}  // namespace msim
