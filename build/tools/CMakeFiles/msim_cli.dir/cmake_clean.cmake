file(REMOVE_RECURSE
  "CMakeFiles/msim_cli.dir/msim_main.cc.o"
  "CMakeFiles/msim_cli.dir/msim_main.cc.o.d"
  "msim"
  "msim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
