# Empty compiler generated dependencies file for bench_fig2_syscall.
# This may be replaced when dependencies are built.
