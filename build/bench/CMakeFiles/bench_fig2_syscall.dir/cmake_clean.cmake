file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_syscall.dir/bench_fig2_syscall.cc.o"
  "CMakeFiles/bench_fig2_syscall.dir/bench_fig2_syscall.cc.o.d"
  "bench_fig2_syscall"
  "bench_fig2_syscall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_syscall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
