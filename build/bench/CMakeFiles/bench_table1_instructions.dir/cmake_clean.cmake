file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_instructions.dir/bench_table1_instructions.cc.o"
  "CMakeFiles/bench_table1_instructions.dir/bench_table1_instructions.cc.o.d"
  "bench_table1_instructions"
  "bench_table1_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
