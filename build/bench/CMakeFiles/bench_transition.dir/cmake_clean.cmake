file(REMOVE_RECURSE
  "CMakeFiles/bench_transition.dir/bench_transition.cc.o"
  "CMakeFiles/bench_transition.dir/bench_transition.cc.o.d"
  "bench_transition"
  "bench_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
