file(REMOVE_RECURSE
  "CMakeFiles/bench_intercept.dir/bench_intercept.cc.o"
  "CMakeFiles/bench_intercept.dir/bench_intercept.cc.o.d"
  "bench_intercept"
  "bench_intercept.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intercept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
