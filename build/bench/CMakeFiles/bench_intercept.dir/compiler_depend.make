# Empty compiler generated dependencies file for bench_intercept.
# This may be replaced when dependencies are built.
