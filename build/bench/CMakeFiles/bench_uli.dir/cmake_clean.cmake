file(REMOVE_RECURSE
  "CMakeFiles/bench_uli.dir/bench_uli.cc.o"
  "CMakeFiles/bench_uli.dir/bench_uli.cc.o.d"
  "bench_uli"
  "bench_uli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
