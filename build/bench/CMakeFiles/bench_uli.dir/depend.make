# Empty dependencies file for bench_uli.
# This may be replaced when dependencies are built.
