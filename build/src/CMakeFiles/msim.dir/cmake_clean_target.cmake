file(REMOVE_RECURSE
  "libmsim.a"
)
