
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asm/assembler.cc" "src/CMakeFiles/msim.dir/asm/assembler.cc.o" "gcc" "src/CMakeFiles/msim.dir/asm/assembler.cc.o.d"
  "/root/repo/src/asm/lexer.cc" "src/CMakeFiles/msim.dir/asm/lexer.cc.o" "gcc" "src/CMakeFiles/msim.dir/asm/lexer.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/msim.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/msim.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/metal_unit.cc" "src/CMakeFiles/msim.dir/cpu/metal_unit.cc.o" "gcc" "src/CMakeFiles/msim.dir/cpu/metal_unit.cc.o.d"
  "/root/repo/src/dev/console.cc" "src/CMakeFiles/msim.dir/dev/console.cc.o" "gcc" "src/CMakeFiles/msim.dir/dev/console.cc.o.d"
  "/root/repo/src/dev/intc.cc" "src/CMakeFiles/msim.dir/dev/intc.cc.o" "gcc" "src/CMakeFiles/msim.dir/dev/intc.cc.o.d"
  "/root/repo/src/dev/nic.cc" "src/CMakeFiles/msim.dir/dev/nic.cc.o" "gcc" "src/CMakeFiles/msim.dir/dev/nic.cc.o.d"
  "/root/repo/src/dev/timer.cc" "src/CMakeFiles/msim.dir/dev/timer.cc.o" "gcc" "src/CMakeFiles/msim.dir/dev/timer.cc.o.d"
  "/root/repo/src/ext/caps.cc" "src/CMakeFiles/msim.dir/ext/caps.cc.o" "gcc" "src/CMakeFiles/msim.dir/ext/caps.cc.o.d"
  "/root/repo/src/ext/cpt.cc" "src/CMakeFiles/msim.dir/ext/cpt.cc.o" "gcc" "src/CMakeFiles/msim.dir/ext/cpt.cc.o.d"
  "/root/repo/src/ext/enclave.cc" "src/CMakeFiles/msim.dir/ext/enclave.cc.o" "gcc" "src/CMakeFiles/msim.dir/ext/enclave.cc.o.d"
  "/root/repo/src/ext/isolation.cc" "src/CMakeFiles/msim.dir/ext/isolation.cc.o" "gcc" "src/CMakeFiles/msim.dir/ext/isolation.cc.o.d"
  "/root/repo/src/ext/nested.cc" "src/CMakeFiles/msim.dir/ext/nested.cc.o" "gcc" "src/CMakeFiles/msim.dir/ext/nested.cc.o.d"
  "/root/repo/src/ext/privilege.cc" "src/CMakeFiles/msim.dir/ext/privilege.cc.o" "gcc" "src/CMakeFiles/msim.dir/ext/privilege.cc.o.d"
  "/root/repo/src/ext/shadowstack.cc" "src/CMakeFiles/msim.dir/ext/shadowstack.cc.o" "gcc" "src/CMakeFiles/msim.dir/ext/shadowstack.cc.o.d"
  "/root/repo/src/ext/stm.cc" "src/CMakeFiles/msim.dir/ext/stm.cc.o" "gcc" "src/CMakeFiles/msim.dir/ext/stm.cc.o.d"
  "/root/repo/src/ext/uli.cc" "src/CMakeFiles/msim.dir/ext/uli.cc.o" "gcc" "src/CMakeFiles/msim.dir/ext/uli.cc.o.d"
  "/root/repo/src/ext/virt.cc" "src/CMakeFiles/msim.dir/ext/virt.cc.o" "gcc" "src/CMakeFiles/msim.dir/ext/virt.cc.o.d"
  "/root/repo/src/isa/decode.cc" "src/CMakeFiles/msim.dir/isa/decode.cc.o" "gcc" "src/CMakeFiles/msim.dir/isa/decode.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/msim.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/msim.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/encoding.cc" "src/CMakeFiles/msim.dir/isa/encoding.cc.o" "gcc" "src/CMakeFiles/msim.dir/isa/encoding.cc.o.d"
  "/root/repo/src/isa/instr_table.cc" "src/CMakeFiles/msim.dir/isa/instr_table.cc.o" "gcc" "src/CMakeFiles/msim.dir/isa/instr_table.cc.o.d"
  "/root/repo/src/mem/bus.cc" "src/CMakeFiles/msim.dir/mem/bus.cc.o" "gcc" "src/CMakeFiles/msim.dir/mem/bus.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/msim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/msim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/mram.cc" "src/CMakeFiles/msim.dir/mem/mram.cc.o" "gcc" "src/CMakeFiles/msim.dir/mem/mram.cc.o.d"
  "/root/repo/src/mem/phys_mem.cc" "src/CMakeFiles/msim.dir/mem/phys_mem.cc.o" "gcc" "src/CMakeFiles/msim.dir/mem/phys_mem.cc.o.d"
  "/root/repo/src/metal/loader.cc" "src/CMakeFiles/msim.dir/metal/loader.cc.o" "gcc" "src/CMakeFiles/msim.dir/metal/loader.cc.o.d"
  "/root/repo/src/metal/mroutine.cc" "src/CMakeFiles/msim.dir/metal/mroutine.cc.o" "gcc" "src/CMakeFiles/msim.dir/metal/mroutine.cc.o.d"
  "/root/repo/src/metal/system.cc" "src/CMakeFiles/msim.dir/metal/system.cc.o" "gcc" "src/CMakeFiles/msim.dir/metal/system.cc.o.d"
  "/root/repo/src/mmu/mmu.cc" "src/CMakeFiles/msim.dir/mmu/mmu.cc.o" "gcc" "src/CMakeFiles/msim.dir/mmu/mmu.cc.o.d"
  "/root/repo/src/mmu/tlb.cc" "src/CMakeFiles/msim.dir/mmu/tlb.cc.o" "gcc" "src/CMakeFiles/msim.dir/mmu/tlb.cc.o.d"
  "/root/repo/src/support/log.cc" "src/CMakeFiles/msim.dir/support/log.cc.o" "gcc" "src/CMakeFiles/msim.dir/support/log.cc.o.d"
  "/root/repo/src/support/strings.cc" "src/CMakeFiles/msim.dir/support/strings.cc.o" "gcc" "src/CMakeFiles/msim.dir/support/strings.cc.o.d"
  "/root/repo/src/synth/component.cc" "src/CMakeFiles/msim.dir/synth/component.cc.o" "gcc" "src/CMakeFiles/msim.dir/synth/component.cc.o.d"
  "/root/repo/src/synth/designs.cc" "src/CMakeFiles/msim.dir/synth/designs.cc.o" "gcc" "src/CMakeFiles/msim.dir/synth/designs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
