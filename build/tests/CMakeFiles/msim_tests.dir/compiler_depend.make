# Empty compiler generated dependencies file for msim_tests.
# This may be replaced when dependencies are built.
