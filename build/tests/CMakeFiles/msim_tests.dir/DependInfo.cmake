
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/asm_test.cc" "tests/CMakeFiles/msim_tests.dir/asm_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/asm_test.cc.o.d"
  "/root/repo/tests/config_variants_test.cc" "tests/CMakeFiles/msim_tests.dir/config_variants_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/config_variants_test.cc.o.d"
  "/root/repo/tests/ext_cpt_test.cc" "tests/CMakeFiles/msim_tests.dir/ext_cpt_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/ext_cpt_test.cc.o.d"
  "/root/repo/tests/ext_misc_test.cc" "tests/CMakeFiles/msim_tests.dir/ext_misc_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/ext_misc_test.cc.o.d"
  "/root/repo/tests/ext_privilege_test.cc" "tests/CMakeFiles/msim_tests.dir/ext_privilege_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/ext_privilege_test.cc.o.d"
  "/root/repo/tests/ext_stm_test.cc" "tests/CMakeFiles/msim_tests.dir/ext_stm_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/ext_stm_test.cc.o.d"
  "/root/repo/tests/ext_uli_test.cc" "tests/CMakeFiles/msim_tests.dir/ext_uli_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/ext_uli_test.cc.o.d"
  "/root/repo/tests/ext_virt_test.cc" "tests/CMakeFiles/msim_tests.dir/ext_virt_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/ext_virt_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/msim_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/interrupt_test.cc" "tests/CMakeFiles/msim_tests.dir/interrupt_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/interrupt_test.cc.o.d"
  "/root/repo/tests/isa_test.cc" "tests/CMakeFiles/msim_tests.dir/isa_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/isa_test.cc.o.d"
  "/root/repo/tests/mem_test.cc" "tests/CMakeFiles/msim_tests.dir/mem_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/mem_test.cc.o.d"
  "/root/repo/tests/metal_test.cc" "tests/CMakeFiles/msim_tests.dir/metal_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/metal_test.cc.o.d"
  "/root/repo/tests/metal_unit_test.cc" "tests/CMakeFiles/msim_tests.dir/metal_unit_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/metal_unit_test.cc.o.d"
  "/root/repo/tests/mmu_test.cc" "tests/CMakeFiles/msim_tests.dir/mmu_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/mmu_test.cc.o.d"
  "/root/repo/tests/pipeline_edge_test.cc" "tests/CMakeFiles/msim_tests.dir/pipeline_edge_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/pipeline_edge_test.cc.o.d"
  "/root/repo/tests/pipeline_property_test.cc" "tests/CMakeFiles/msim_tests.dir/pipeline_property_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/pipeline_property_test.cc.o.d"
  "/root/repo/tests/pipeline_test.cc" "tests/CMakeFiles/msim_tests.dir/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/pipeline_test.cc.o.d"
  "/root/repo/tests/support_test.cc" "tests/CMakeFiles/msim_tests.dir/support_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/support_test.cc.o.d"
  "/root/repo/tests/synth_test.cc" "tests/CMakeFiles/msim_tests.dir/synth_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/synth_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/msim_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/msim_tests.dir/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
