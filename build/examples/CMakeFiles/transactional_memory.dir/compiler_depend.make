# Empty compiler generated dependencies file for transactional_memory.
# This may be replaced when dependencies are built.
