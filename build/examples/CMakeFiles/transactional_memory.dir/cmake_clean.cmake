file(REMOVE_RECURSE
  "CMakeFiles/transactional_memory.dir/transactional_memory.cc.o"
  "CMakeFiles/transactional_memory.dir/transactional_memory.cc.o.d"
  "transactional_memory"
  "transactional_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transactional_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
