file(REMOVE_RECURSE
  "CMakeFiles/privilege_levels.dir/privilege_levels.cc.o"
  "CMakeFiles/privilege_levels.dir/privilege_levels.cc.o.d"
  "privilege_levels"
  "privilege_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privilege_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
