# Empty dependencies file for privilege_levels.
# This may be replaced when dependencies are built.
