# Empty compiler generated dependencies file for key_isolation.
# This may be replaced when dependencies are built.
