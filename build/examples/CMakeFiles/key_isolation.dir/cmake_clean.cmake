file(REMOVE_RECURSE
  "CMakeFiles/key_isolation.dir/key_isolation.cc.o"
  "CMakeFiles/key_isolation.dir/key_isolation.cc.o.d"
  "key_isolation"
  "key_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
