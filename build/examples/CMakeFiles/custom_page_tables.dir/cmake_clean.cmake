file(REMOVE_RECURSE
  "CMakeFiles/custom_page_tables.dir/custom_page_tables.cc.o"
  "CMakeFiles/custom_page_tables.dir/custom_page_tables.cc.o.d"
  "custom_page_tables"
  "custom_page_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_page_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
