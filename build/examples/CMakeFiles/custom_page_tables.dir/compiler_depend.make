# Empty compiler generated dependencies file for custom_page_tables.
# This may be replaced when dependencies are built.
