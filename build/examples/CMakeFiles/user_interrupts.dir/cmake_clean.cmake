file(REMOVE_RECURSE
  "CMakeFiles/user_interrupts.dir/user_interrupts.cc.o"
  "CMakeFiles/user_interrupts.dir/user_interrupts.cc.o.d"
  "user_interrupts"
  "user_interrupts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_interrupts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
