# Empty dependencies file for user_interrupts.
# This may be replaced when dependencies are built.
